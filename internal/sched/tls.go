package sched

// Thread-local storage and reduction hyperobjects.
//
// The paper's coloring kernel needs two things from each runtime: a
// per-thread forbidden-color array (localFC) and a max reduction for the
// color count. In Cilk Plus those are a "holder" view and a reducer_max; in
// TBB an enumerable_thread_specific and a combinable. Both pairs share one
// implementation here, perWorker, with the lazy-initialisation semantics the
// paper describes ("a view is a thread local variable that is initialized
// for a thread at the time it uses it", §IV-A2).

// perWorker is a lazily initialised per-worker slot array.
type perWorker[T any] struct {
	slots []slot[T]
	init  func() T
}

// slot pads entries so adjacent workers' views do not share a cache line.
type slot[T any] struct {
	val   T
	ready bool
	_     [40]byte
}

func newPerWorker[T any](workers int, init func() T) *perWorker[T] {
	return &perWorker[T]{slots: make([]slot[T], workers), init: init}
}

// view returns the worker's slot, initialising it on first use.
func (p *perWorker[T]) view(worker int) *T {
	s := &p.slots[worker]
	if !s.ready {
		s.val = p.init()
		s.ready = true
	}
	return &s.val
}

// each calls f on every initialised view.
func (p *perWorker[T]) each(f func(*T)) {
	for i := range p.slots {
		if p.slots[i].ready {
			f(&p.slots[i].val)
		}
	}
}

// Holder is the Cilk Plus holder hyperobject: per-worker storage created on
// demand, typically holding scratch buffers like the coloring kernel's
// localFC array. It must be created for a specific pool size and used only
// from tasks of that pool.
type Holder[T any] struct{ pw *perWorker[T] }

// NewHolder creates a Holder whose views are initialised by init.
func NewHolder[T any](workers int, init func() T) *Holder[T] {
	return &Holder[T]{pw: newPerWorker(workers, init)}
}

// View returns the calling task's view.
func (h *Holder[T]) View(c *Ctx) *T { return h.pw.view(c.Worker()) }

// ViewAt returns the view of an explicit worker id (for Team-based loops,
// where the OpenMP code indexes scratch space by thread id).
func (h *Holder[T]) ViewAt(worker int) *T { return h.pw.view(worker) }

// Each visits every view that was materialised.
func (h *Holder[T]) Each(f func(*T)) { h.pw.each(f) }

// ReducerMax is the Cilk Plus reducer_max hyperobject for ints: write-only
// updates into per-worker views, reduced when Get is called.
type ReducerMax struct {
	pw   *perWorker[int]
	zero int
}

// NewReducerMax creates a max reducer with the given identity value.
func NewReducerMax(workers, identity int) *ReducerMax {
	return &ReducerMax{
		pw:   newPerWorker(workers, func() int { return identity }),
		zero: identity,
	}
}

// Update merges v into the calling task's view.
func (r *ReducerMax) Update(c *Ctx, v int) { r.UpdateAt(c.Worker(), v) }

// UpdateAt merges v into an explicit worker's view.
func (r *ReducerMax) UpdateAt(worker int, v int) {
	p := r.pw.view(worker)
	if v > *p {
		*p = v
	}
}

// Get reduces the views and returns the maximum observed value (the
// identity if no update happened). Only call after the parallel region.
func (r *ReducerMax) Get() int {
	out := r.zero
	r.pw.each(func(p *int) {
		if *p > out {
			out = *p
		}
	})
	return out
}

// ETS is TBB's enumerable_thread_specific: identical machinery to Holder
// under the TBB name, kept separate so kernel code reads like its C++
// counterpart.
type ETS[T any] struct{ pw *perWorker[T] }

// NewETS creates an enumerable thread-specific variable.
func NewETS[T any](workers int, init func() T) *ETS[T] {
	return &ETS[T]{pw: newPerWorker(workers, init)}
}

// Local returns the calling task's element, creating it on first use.
func (e *ETS[T]) Local(c *Ctx) *T { return e.pw.view(c.Worker()) }

// LocalAt returns the element of an explicit worker id.
func (e *ETS[T]) LocalAt(worker int) *T { return e.pw.view(worker) }

// Each visits every element that was materialised.
func (e *ETS[T]) Each(f func(*T)) { e.pw.each(f) }

// Combinable is TBB's combinable<T>: per-worker copies combined with a
// binary functor at the end of the parallel execution.
type Combinable[T any] struct{ pw *perWorker[T] }

// NewCombinable creates a combinable whose copies are initialised by init.
func NewCombinable[T any](workers int, init func() T) *Combinable[T] {
	return &Combinable[T]{pw: newPerWorker(workers, init)}
}

// Local returns the calling task's copy.
func (cb *Combinable[T]) Local(c *Ctx) *T { return cb.pw.view(c.Worker()) }

// LocalAt returns the copy of an explicit worker id.
func (cb *Combinable[T]) LocalAt(worker int) *T { return cb.pw.view(worker) }

// Combine folds every materialised copy into identity with f.
func (cb *Combinable[T]) Combine(identity T, f func(a, b T) T) T {
	out := identity
	cb.pw.each(func(p *T) { out = f(out, *p) })
	return out
}
