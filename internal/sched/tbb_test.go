package sched

import (
	"sync/atomic"
	"testing"
)

func TestRangeSplit(t *testing.T) {
	r := Range{0, 100, 10}
	if !r.IsDivisible() {
		t.Fatal("range of 100 with grain 10 not divisible")
	}
	l, rr := r.Split()
	if l.Hi != rr.Lo || l.Lo != 0 || rr.Hi != 100 {
		t.Errorf("split = %+v, %+v", l, rr)
	}
	small := Range{0, 10, 10}
	if small.IsDivisible() {
		t.Error("range at grain still divisible")
	}
	if (Range{0, 5, 0}).grain() != 1 {
		t.Error("default grain != 1")
	}
}

func TestParallelForRangeAllPartitioners(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, part := range []Partitioner{SimplePartitioner, AutoPartitioner, AffinityPartitioner} {
		part := part
		t.Run(part.String(), func(t *testing.T) {
			var aff AffinityState
			coverageCheck(t, 997, func(mark func(int)) {
				ParallelForRange(pool, Range{0, 997, 8}, part, &aff, func(lo, hi int, c *Ctx) {
					for i := lo; i < hi; i++ {
						mark(i)
					}
				})
			})
		})
	}
}

func TestParallelForRangeEmpty(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	called := int32(0)
	ParallelForRange(pool, Range{5, 5, 1}, SimplePartitioner, nil, func(lo, hi int, c *Ctx) {
		atomic.AddInt32(&called, 1)
	})
	if called != 0 {
		t.Error("body called for empty range")
	}
}

func TestAffinityReplayCoverage(t *testing.T) {
	// Re-running the same loop with the same AffinityState must stay correct
	// and reuse the same block decomposition.
	pool := NewPool(4)
	defer pool.Close()
	var aff AffinityState
	for round := 0; round < 5; round++ {
		coverageCheck(t, 503, func(mark func(int)) {
			ParallelForRange(pool, Range{0, 503, 4}, AffinityPartitioner, &aff, func(lo, hi int, c *Ctx) {
				for i := lo; i < hi; i++ {
					mark(i)
				}
			})
		})
	}
	if len(aff.blocks) == 0 || len(aff.blocks) > 16 {
		t.Errorf("affinity produced %d blocks, want 1..16 (4*workers)", len(aff.blocks))
	}
}

func TestAffinityPanicsWithoutState(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("AffinityPartitioner without state did not panic")
		}
	}()
	ParallelForRange(pool, Range{0, 10, 1}, AffinityPartitioner, nil, func(lo, hi int, c *Ctx) {})
}

func TestPartitionerString(t *testing.T) {
	if SimplePartitioner.String() != "simple" || AutoPartitioner.String() != "auto" || AffinityPartitioner.String() != "affinity" {
		t.Error("partitioner names wrong")
	}
}

func TestETS(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ets := NewETS(4, func() map[int]int { return map[int]int{} })
	pool.ParallelFor(400, 10, func(lo, hi int, c *Ctx) {
		m := ets.Local(c)
		(*m)[lo] = hi
	})
	seen := 0
	ets.Each(func(m *map[int]int) { seen += len(*m) })
	if seen != countChunks(400, 10) {
		t.Errorf("ETS recorded %d chunks, want %d", seen, countChunks(400, 10))
	}
}

func TestCombinable(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	cb := NewCombinable(4, func() int64 { return 0 })
	pool.ParallelFor(1000, 16, func(lo, hi int, c *Ctx) {
		local := cb.Local(c)
		for i := lo; i < hi; i++ {
			*local += int64(i)
		}
	})
	got := cb.Combine(0, func(a, b int64) int64 { return a + b })
	if got != 499500 {
		t.Errorf("Combine = %d, want 499500", got)
	}
}

func TestCombinableMax(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	cb := NewCombinable(3, func() int { return -1 })
	ParallelForRange(pool, Range{0, 500, 20}, SimplePartitioner, nil, func(lo, hi int, c *Ctx) {
		local := cb.Local(c)
		for i := lo; i < hi; i++ {
			if v := (i * 37) % 499; v > *local {
				*local = v
			}
		}
	})
	got := cb.Combine(-1, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if got != 498 {
		t.Errorf("Combine(max) = %d, want 498", got)
	}
}
