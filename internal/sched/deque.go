package sched

import "sync"

// task is one unit of work in the work-stealing pool. ctx identifies the
// spawning scope so Sync can account for completions.
type task struct {
	fn    func(w *worker)
	scope *scope
}

// deque is a double-ended work queue: the owning worker pushes and pops at
// the bottom (LIFO, preserving the sequential order Cilk relies on), thieves
// steal from the top (FIFO, taking the oldest — and in recursive
// decompositions the largest — work, "the deepest half of the stack" in the
// paper's description).
//
// The implementation is mutex-based. A lock-free Chase-Lev deque would cut
// the constant factor, but the kernels built on this pool measure simulated
// time (package mic), not wall-clock scheduling overhead, so correctness and
// clarity win here.
type deque struct {
	mu    sync.Mutex
	items []task
}

// pushBottom adds t at the bottom (owner only).
func (d *deque) pushBottom(t task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// popBottom removes the most recently pushed task (owner only).
func (d *deque) popBottom() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return task{}, false
	}
	t := d.items[n-1]
	d.items[n-1] = task{} // release references
	d.items = d.items[:n-1]
	return t, true
}

// stealTop removes the oldest task (thieves).
func (d *deque) stealTop() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return task{}, false
	}
	t := d.items[0]
	d.items[0] = task{}
	d.items = d.items[1:]
	return t, true
}

// size returns the current number of queued tasks.
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
