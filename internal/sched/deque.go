package sched

import "sync"

// task is one unit of work in the work-stealing pool: either a plain task
// (fn != nil) or a loop subrange [lo, hi) with its body, grain, and split
// discipline (kind). The range form exists so the recursive cilk_for and
// TBB partitioner splits can enqueue work without allocating a wrapper
// closure per split — the body closure is created once per loop and shared
// by every subrange task. scope is the spawning scope, so Sync can account
// for completions.
type task struct {
	scope *scope
	fn    func(*Ctx)
	body  func(lo, hi int, c *Ctx)
	lo    int
	hi    int
	grain int
	kind  uint8
}

// Range-task kinds: how a subrange continues subdividing when executed.
const (
	taskFor      uint8 = iota // cilk_for halving split (Ctx.forSplit)
	taskSimple                // TBB simple partitioner (simpleSplit)
	taskAuto                  // TBB auto partitioner (autoRun)
	taskAutoRoot              // TBB auto partitioner seeding (autoRoot)
)

// deque is a double-ended work queue: the owning worker pushes and pops at
// the bottom (LIFO, preserving the sequential order Cilk relies on), thieves
// steal from the top (FIFO, taking the oldest — and in recursive
// decompositions the largest — work, "the deepest half of the stack" in the
// paper's description).
//
// The implementation is mutex-based. A lock-free Chase-Lev deque would cut
// the constant factor, but the kernels built on this pool measure simulated
// time (package mic), not wall-clock scheduling overhead, so correctness and
// clarity win here.
type deque struct {
	mu    sync.Mutex
	items []task
}

// pushBottom adds t at the bottom (owner only).
func (d *deque) pushBottom(t task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// popBottom removes the most recently pushed task (owner only).
func (d *deque) popBottom() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return task{}, false
	}
	t := d.items[n-1]
	d.items[n-1] = task{} // release references
	d.items = d.items[:n-1]
	return t, true
}

// stealTop removes the oldest task (thieves). The remaining tasks shift
// down rather than reslicing forward, so the deque's backing array keeps
// its full capacity — reslicing with items[1:] would strand one slot per
// steal and force the owner's next pushes to reallocate, an allocation
// per steal in steady state.
func (d *deque) stealTop() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return task{}, false
	}
	t := d.items[0]
	copy(d.items, d.items[1:])
	d.items[n-1] = task{}
	d.items = d.items[:n-1]
	return t, true
}

// size returns the current number of queued tasks.
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
