package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// settleGoroutines polls until the goroutine count drops back to at most
// want (runtime workers park asynchronously after Close).
func settleGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), want)
}

func TestTeamForEBodyPanic(t *testing.T) {
	before := runtime.NumGoroutine()
	team := NewTeam(4)
	err := team.ForE(1000, ForOptions{Policy: Dynamic, Chunk: 10}, func(lo, hi, w int) {
		if lo >= 500 {
			panic("boom at " + fmt.Sprint(lo))
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ForE returned %v, want *PanicError", err)
	}
	if s, ok := pe.Value.(string); !ok || !strings.HasPrefix(s, "boom at ") {
		t.Errorf("panic value %v not preserved", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "hardening_test") {
		t.Errorf("PanicError carries no originating stack:\n%s", pe.Stack)
	}
	if pe.Worker < 0 || pe.Worker >= 4 {
		t.Errorf("worker id %d out of range", pe.Worker)
	}
	// The team must survive a panic and stay usable.
	var n atomic.Int64
	if err := team.ForE(100, ForOptions{}, func(lo, hi, w int) { n.Add(int64(hi - lo)) }); err != nil {
		t.Fatalf("team unusable after panic: %v", err)
	}
	if n.Load() != 100 {
		t.Errorf("post-panic loop covered %d/100 iterations", n.Load())
	}
	team.Close()
	settleGoroutines(t, before)
}

func TestTeamForRepanics(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	defer func() {
		r := recover()
		if _, ok := r.(*PanicError); !ok {
			t.Fatalf("For recovered %v, want *PanicError", r)
		}
	}()
	team.For(10, ForOptions{}, func(lo, hi, w int) { panic("legacy path") })
}

func TestTeamForCtxCancelMidLoop(t *testing.T) {
	before := runtime.NumGoroutine()
	team := NewTeam(4)
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	err := team.ForCtx(ctx, 100000, ForOptions{Policy: Dynamic, Chunk: 1}, func(lo, hi, w int) {
		if executed.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Cancellation at chunk-claim boundaries: already-claimed chunks may
	// finish, but the bulk of the loop must have been skipped.
	if n := executed.Load(); n >= 100000 {
		t.Errorf("loop ran to completion (%d chunks) despite cancellation", n)
	}
	team.Close()
	settleGoroutines(t, before)
}

func TestTeamPanicBeatsCancellation(t *testing.T) {
	team := NewTeam(2)
	defer team.Close()
	ctx, cancel := context.WithCancel(context.Background())
	err := team.ForCtx(ctx, 100, ForOptions{}, func(lo, hi, w int) {
		cancel()
		panic("both fail modes at once")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want the panic to win over ctx.Err()", err)
	}
}

func TestPoolRunEPanicInSpawnedTree(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := NewPool(4)
	err := pool.RunE(func(c *Ctx) {
		for i := 0; i < 16; i++ {
			i := i
			c.Spawn(func(cc *Ctx) {
				if i == 11 {
					panic(fmt.Errorf("spawned task %d failed", i))
				}
			})
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunE returned %v, want *PanicError", err)
	}
	var inner error
	if inner, _ = pe.Value.(error); inner == nil || inner.Error() != "spawned task 11 failed" {
		t.Errorf("panic value %v not preserved", pe.Value)
	}
	// Unwrap must expose the inner error to errors.Is/As through PanicError.
	if !strings.Contains(err.Error(), "spawned task 11 failed") {
		t.Errorf("error text lost the cause: %v", err)
	}
	// Pool stays usable after a contained panic.
	var n atomic.Int64
	if err := pool.ParallelForE(100, 1, func(lo, hi int, c *Ctx) { n.Add(int64(hi - lo)) }); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if n.Load() != 100 {
		t.Errorf("post-panic loop covered %d/100", n.Load())
	}
	pool.Close()
	settleGoroutines(t, before)
}

func TestPoolRunCtxCancelSkipsTasks(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := pool.RunCtx(ctx, func(c *Ctx) {
		cancel() // cancelled before any child is spawned
		for i := 0; i < 1000; i++ {
			c.Spawn(func(cc *Ctx) { ran.Add(1) })
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d spawned tasks ran after cancellation", ran.Load())
	}
}

func TestPoolRunEOnClosedPool(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	if err := pool.RunE(func(c *Ctx) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("RunE on closed pool: %v, want ErrPoolClosed", err)
	}
	// The legacy Run keeps its historical panic string.
	defer func() {
		if r := recover(); r != "sched: Run on closed Pool" {
			t.Fatalf("Run on closed pool panicked %v", r)
		}
	}()
	pool.Run(func(c *Ctx) {})
}

// TestPoolCloseDuringRun exercises the shutdown state machine: Close racing
// in-flight Runs must neither strand a submitted root task nor let workers
// exit while a run is active. Every Run started before Close must complete.
func TestPoolCloseDuringRun(t *testing.T) {
	for round := 0; round < 20; round++ {
		before := runtime.NumGoroutine()
		pool := NewPool(4)
		var started, finished atomic.Int64
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := pool.RunE(func(c *Ctx) {
					started.Add(1)
					for i := 0; i < 8; i++ {
						c.Spawn(func(cc *Ctx) { runtime.Gosched() })
					}
				})
				if err == nil {
					finished.Add(1)
				} else if !errors.Is(err, ErrPoolClosed) {
					t.Errorf("Run failed with %v", err)
				}
			}()
		}
		runtime.Gosched()
		pool.Close()
		wg.Wait()
		if started.Load() != finished.Load() {
			t.Fatalf("round %d: %d runs started but only %d finished",
				round, started.Load(), finished.Load())
		}
		settleGoroutines(t, before)
	}
}

func TestTeamInjectHookPanicsAreContained(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	var calls atomic.Int64
	team.SetInject(func(site string, worker int) {
		if site != "team/chunk" {
			t.Errorf("unexpected site %q", site)
		}
		if calls.Add(1) == 5 {
			panic("injected")
		}
	})
	err := team.ForE(1000, ForOptions{Policy: Dynamic, Chunk: 10}, func(lo, hi, w int) {})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "injected" {
		t.Fatalf("injected hook panic not surfaced: %v", err)
	}
	team.SetInject(nil)
}
