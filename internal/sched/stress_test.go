package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Stress tests: hammer the runtimes with deep nesting, many sequential
// regions, simultaneous teams/pools, and worker counts far beyond
// GOMAXPROCS (the norm in this repository: the paper's thread axis is
// simulated, but the engines must stay correct at any width).

func TestTeamManyWorkersFewItems(t *testing.T) {
	team := NewTeam(64)
	defer team.Close()
	for round := 0; round < 20; round++ {
		var count atomic.Int64
		team.ForEach(5, ForOptions{Policy: Dynamic}, func(i, w int) {
			count.Add(1)
		})
		if count.Load() != 5 {
			t.Fatalf("round %d: %d of 5 items", round, count.Load())
		}
	}
}

func TestManySimultaneousTeams(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			team := NewTeam(4)
			defer team.Close()
			var sum atomic.Int64
			team.ForEach(1000, ForOptions{Policy: Guided, Chunk: 7}, func(i, w int) {
				sum.Add(int64(i))
			})
			if sum.Load() != 499500 {
				errs <- "wrong sum"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestManySimultaneousPools(t *testing.T) {
	var wg sync.WaitGroup
	var bad atomic.Int32
	for k := 0; k < 6; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := NewPool(3)
			defer pool.Close()
			var got int
			pool.Run(func(c *Ctx) { got = fib(c, 12) })
			if got != 144 {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d pools computed fib wrong", bad.Load())
	}
}

func TestDeepNestedSpawns(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var leaves atomic.Int64
	var rec func(c *Ctx, depth int)
	rec = func(c *Ctx, depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		c.Spawn(func(cc *Ctx) { rec(cc, depth-1) })
		rec(c, depth-1)
		c.Sync()
	}
	pool.Run(func(c *Ctx) { rec(c, 12) })
	if leaves.Load() != 1<<12 {
		t.Errorf("leaves = %d, want %d", leaves.Load(), 1<<12)
	}
}

func TestNestedParallelForInsideSpawn(t *testing.T) {
	// The paper highlights nested parallelism as Cilk's strength ("Cilk
	// allows to easily leverage nested parallelism").
	pool := NewPool(4)
	defer pool.Close()
	var total atomic.Int64
	pool.Run(func(c *Ctx) {
		for outer := 0; outer < 8; outer++ {
			c.Spawn(func(cc *Ctx) {
				cc.For(0, 100, 10, func(lo, hi int, _ *Ctx) {
					total.Add(int64(hi - lo))
				})
			})
		}
	})
	if total.Load() != 800 {
		t.Errorf("nested loops covered %d of 800", total.Load())
	}
}

func TestPoolManyWorkers(t *testing.T) {
	pool := NewPool(96)
	defer pool.Close()
	coverageCheck(t, 10000, func(mark func(int)) {
		pool.ParallelFor(10000, 16, func(lo, hi int, c *Ctx) {
			for i := lo; i < hi; i++ {
				mark(i)
			}
		})
	})
}

func TestTeamRepeatedLoops(t *testing.T) {
	// Reuse a team for thousands of tiny loops — the coloring and BFS
	// kernels' usage pattern (two loops per round/level).
	team := NewTeam(8)
	defer team.Close()
	var total atomic.Int64
	for i := 0; i < 2000; i++ {
		team.For(37, ForOptions{Policy: Dynamic, Chunk: 5}, func(lo, hi, w int) {
			total.Add(int64(hi - lo))
		})
	}
	if total.Load() != 2000*37 {
		t.Fatalf("covered %d, want %d", total.Load(), 2000*37)
	}
}

func TestHolderIsolationBetweenWorkers(t *testing.T) {
	pool := NewPool(6)
	defer pool.Close()
	h := NewHolder(6, func() *int { v := 0; return &v })
	pool.ParallelFor(6000, 10, func(lo, hi int, c *Ctx) {
		p := *h.View(c)
		*p += hi - lo
	})
	sum := 0
	h.Each(func(p **int) { sum += **p })
	if sum != 6000 {
		t.Errorf("holder views sum to %d, want 6000", sum)
	}
}

func TestAffinityStateReuseAcrossSizes(t *testing.T) {
	// Changing the range size must rebuild the block map, not corrupt it.
	pool := NewPool(4)
	defer pool.Close()
	var aff AffinityState
	for _, n := range []int{100, 50, 200, 100, 1} {
		n := n
		coverageCheck(t, n, func(mark func(int)) {
			ParallelForRange(pool, Range{0, n, 4}, AffinityPartitioner, &aff, func(lo, hi int, c *Ctx) {
				for i := lo; i < hi; i++ {
					mark(i)
				}
			})
		})
	}
}
