package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PanicError is the error returned by the E/Ctx loop drivers when a loop
// body, task, or injected fault panics on a worker. It preserves the
// original panic value and the stack of the panicking worker goroutine, so
// a crash inside a parallel region is as debuggable as a sequential one.
type PanicError struct {
	Value  any    // the value passed to panic()
	Worker int    // id of the worker the panic occurred on
	Stack  []byte // stack trace captured at recovery point
}

// Error formats the panic with its originating stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: panic on worker %d: %v\n%s", e.Worker, e.Value, e.Stack)
}

// Unwrap exposes the panic value when it is itself an error, so
// errors.Is/As see through the runtime boundary (e.g. to classify an
// injected fault as transient).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ErrPoolClosed is returned by RunE/RunCtx when the pool has been closed.
var ErrPoolClosed = errors.New("sched: Run on closed Pool")

// panicSlot collects the first panic observed across the workers of one
// loop or task tree. Later panics are dropped: the first failure is the
// one that aborts the region, matching errgroup-style semantics.
type panicSlot struct {
	has atomic.Bool // lock-free "a panic happened" flag for hot-path polls
	mu  sync.Mutex
	err *PanicError
}

// failed reports (without locking) whether a panic has been recorded.
func (s *panicSlot) failed() bool { return s.has.Load() }

// record stores the panic if the slot is still empty. A re-thrown
// *PanicError keeps its original worker and stack.
func (s *panicSlot) record(worker int, v any, stack []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if pe, ok := v.(*PanicError); ok {
		s.err = pe
	} else {
		s.err = &PanicError{Value: v, Worker: worker, Stack: stack}
	}
	s.has.Store(true)
}

// reset clears the slot for reuse by the next loop on a resident control
// block. Must not race with record — callers reset only between loops.
func (s *panicSlot) reset() {
	s.mu.Lock()
	s.err = nil
	s.has.Store(false)
	s.mu.Unlock()
}

func (s *panicSlot) get() *PanicError {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// InjectFunc is an optional fault-injection hook called by the runtimes at
// chunk-claim and task-execution boundaries (site identifies the boundary,
// e.g. "team/chunk" or "pool/task"). A hook that panics is contained
// exactly like a panicking loop body; a hook that sleeps models a stalled
// worker. See internal/fault for a deterministic implementation.
type InjectFunc func(site string, worker int)
