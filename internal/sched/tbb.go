package sched

import (
	"context"
	"fmt"

	"micgraph/internal/telemetry"
)

// TBB-style blocked ranges and partitioners, executed on the work-stealing
// Pool. A Range plays blocked_range<int>: an iteration interval with a grain
// size under which it is never split. The partitioner decides when to split:
//
//   - SimplePartitioner splits recursively all the way down to the grain
//     ("similar to the dynamic scheduling policy of OpenMP", §II-C);
//   - AutoPartitioner creates ~workers subranges and splits further only
//     when a subrange gets stolen;
//   - AffinityPartitioner remembers which worker ran each block in the
//     previous execution of the same loop and replays that assignment to
//     maximise cache reuse.

// Range is an iteration interval [Lo, Hi) with a minimum split size.
type Range struct {
	Lo, Hi int
	Grain  int // never split below this many iterations; <= 0 means 1
}

// Size returns the iteration count.
func (r Range) Size() int { return r.Hi - r.Lo }

// IsDivisible reports whether the range may be split further.
func (r Range) IsDivisible() bool { return r.Size() > r.grain() }

func (r Range) grain() int {
	if r.Grain <= 0 {
		return 1
	}
	return r.Grain
}

// Split halves the range, returning the left and right parts.
func (r Range) Split() (Range, Range) {
	mid := r.Lo + r.Size()/2
	return Range{r.Lo, mid, r.Grain}, Range{mid, r.Hi, r.Grain}
}

// Partitioner selects a TBB range-partitioning policy.
type Partitioner int

const (
	// SimplePartitioner recursively divides the range until the grain size
	// is reached.
	SimplePartitioner Partitioner = iota
	// AutoPartitioner uses work-stealing events to decide whether to split.
	AutoPartitioner
	// AffinityPartitioner replays the block→worker assignment of the
	// previous run of the same loop (see AffinityState).
	AffinityPartitioner
)

// String returns the TBB name of the partitioner.
func (p Partitioner) String() string {
	switch p {
	case SimplePartitioner:
		return "simple"
	case AutoPartitioner:
		return "auto"
	case AffinityPartitioner:
		return "affinity"
	}
	return fmt.Sprintf("Partitioner(%d)", int(p))
}

// ParallelForRange executes body over r on pool using the given partitioner.
// For AffinityPartitioner, pass a persistent *AffinityState; it may be nil
// for the other partitioners. Panics (closed pool, body panic) propagate on
// the caller's goroutine; use ParallelForRangeCtx for errors and
// cancellation.
func ParallelForRange(pool *Pool, r Range, part Partitioner, aff *AffinityState, body func(lo, hi int, c *Ctx)) {
	if err := ParallelForRangeCtx(nil, pool, r, part, aff, body); err != nil {
		if err == ErrPoolClosed {
			panic("sched: Run on closed Pool")
		}
		panic(err)
	}
}

// ParallelForRangeCtx is ParallelForRange returning the first body panic as
// a *PanicError and polling ctx (which may be nil) at every split boundary
// for cooperative cancellation.
func ParallelForRangeCtx(ctx context.Context, pool *Pool, r Range, part Partitioner, aff *AffinityState, body func(lo, hi int, c *Ctx)) error {
	if r.Size() <= 0 {
		return nil
	}
	switch part {
	case SimplePartitioner:
		return pool.runRoot(ctx, task{body: body, lo: r.Lo, hi: r.Hi, grain: r.Grain, kind: taskSimple})
	case AutoPartitioner:
		return pool.runRoot(ctx, task{body: body, lo: r.Lo, hi: r.Hi, grain: r.Grain, kind: taskAutoRoot})
	case AffinityPartitioner:
		if aff == nil {
			panic("sched: AffinityPartitioner requires an AffinityState")
		}
		return affinityRun(ctx, pool, r, aff, body)
	default:
		panic(fmt.Sprintf("sched: unknown partitioner %d", part))
	}
}

// simpleSplit recursively halves down to the grain, spawning the left part.
// Cancellation is polled at each split so a cancelled run stops subdividing
// and skips unexecuted subranges.
func simpleSplit(c *Ctx, r Range, body func(lo, hi int, c *Ctx)) {
	counters := c.w.pool.counters.Load()
	for r.IsDivisible() {
		if c.Cancelled() {
			return
		}
		counters.Inc(c.w.id, telemetry.RangeSplits)
		left, right := r.Split()
		c.spawnRange(taskSimple, left, body)
		r = right
	}
	if c.Cancelled() {
		return
	}
	counters.Inc(c.w.id, telemetry.ChunksClaimed)
	body(r.Lo, r.Hi, c)
	// implicit sync at task exit joins the spawned halves
}

// autoRoot seeds one subrange per worker, then lets autoRun subdivide on
// steals.
func autoRoot(c *Ctx, r Range, body func(lo, hi int, c *Ctx)) {
	p := c.Pool().Workers()
	n := r.Size()
	for w := 0; w < p; w++ {
		lo := r.Lo + n*w/p
		hi := r.Lo + n*(w+1)/p
		if lo >= hi {
			continue
		}
		c.spawnRange(taskAuto, Range{lo, hi, r.Grain}, body)
	}
}

// autoRun executes a subrange; if this task arrived by theft and the range
// is still divisible, it splits once and continues with the left half,
// giving the next thief something big to take.
func autoRun(c *Ctx, r Range, body func(lo, hi int, c *Ctx)) {
	counters := c.w.pool.counters.Load()
	for c.Stolen() && r.IsDivisible() {
		if c.Cancelled() {
			return
		}
		counters.Inc(c.w.id, telemetry.RangeSplits)
		left, right := r.Split()
		c.spawnRange(taskAuto, right, body)
		r = left
	}
	if c.Cancelled() {
		return
	}
	counters.Inc(c.w.id, telemetry.ChunksClaimed)
	body(r.Lo, r.Hi, c)
}

// AffinityState carries the block→worker map of an affinity-partitioned
// loop across executions. Zero value is ready to use; reuse the same value
// for repeated executions of the same loop to get the replay behaviour
// ("if the same affinity partitioner is used on multiple loops, it tries to
// allocate the iterations to the thread that executed them during the
// previous loop").
type AffinityState struct {
	blocks  []Range // fixed block decomposition from the first run
	homes   []int   // worker that last ran each block
	n       int     // iteration count the state was built for
	workers int
}

// affinityRun decomposes r into ~4·workers blocks (first run: round-robin
// homes) and submits each block directly to its home worker's deque; idle
// workers may still steal blocks, and theft updates the block's home.
func affinityRun(ctx context.Context, pool *Pool, r Range, aff *AffinityState, body func(lo, hi int, c *Ctx)) error {
	p := pool.Workers()
	if aff.blocks == nil || aff.n != r.Size() || aff.workers != p {
		nb := 4 * p
		if nb > r.Size() {
			nb = r.Size()
		}
		aff.blocks = aff.blocks[:0]
		aff.homes = aff.homes[:0]
		for b := 0; b < nb; b++ {
			lo := r.Lo + r.Size()*b/nb
			hi := r.Lo + r.Size()*(b+1)/nb
			if lo < hi {
				aff.blocks = append(aff.blocks, Range{lo, hi, r.Grain})
				aff.homes = append(aff.homes, b%p)
			}
		}
		aff.n = r.Size()
		aff.workers = p
	}
	return pool.RunCtx(ctx, func(c *Ctx) {
		for i := range aff.blocks {
			i := i
			blk := aff.blocks[i]
			c.Pool().submitTo(aff.homes[i], c.sc, func(cc *Ctx) {
				if cc.Cancelled() {
					return
				}
				aff.homes[i] = cc.Worker() // theft moves the home
				cc.w.pool.counters.Load().Inc(cc.w.id, telemetry.ChunksClaimed)
				body(blk.Lo, blk.Hi, cc)
			})
		}
	})
}
