package sched

import (
	"sync/atomic"
	"testing"
)

func TestPoolParallelForCoverage(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, grain := range []int{0, 1, 13, 1000, 100000} {
		grain := grain
		coverageCheck(t, 1000, func(mark func(int)) {
			pool.ParallelFor(1000, grain, func(lo, hi int, c *Ctx) {
				for i := lo; i < hi; i++ {
					mark(i)
				}
			})
		})
	}
}

func TestPoolSpawnSync(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var after atomic.Bool
	var children atomic.Int32
	pool.Run(func(c *Ctx) {
		for i := 0; i < 20; i++ {
			c.Spawn(func(cc *Ctx) {
				children.Add(1)
			})
		}
		c.Sync()
		if children.Load() != 20 {
			t.Errorf("after Sync only %d of 20 children ran", children.Load())
		}
		after.Store(true)
	})
	if !after.Load() {
		t.Fatal("Run returned before root completed")
	}
}

// fib computes Fibonacci with spawn/sync, the canonical Cilk recursion.
func fib(c *Ctx, n int) int {
	if n < 2 {
		return n
	}
	var a int
	c.Spawn(func(cc *Ctx) { a = fib(cc, n-1) })
	b := fib(c, n-2)
	c.Sync()
	return a + b
}

func TestPoolFib(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	var got int
	pool.Run(func(c *Ctx) { got = fib(c, 15) })
	if got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestPoolImplicitSync(t *testing.T) {
	// Children spawned but never explicitly synced must still complete
	// before Run returns (Cilk's implicit sync at function exit).
	pool := NewPool(4)
	defer pool.Close()
	var ran atomic.Int32
	pool.Run(func(c *Ctx) {
		for i := 0; i < 50; i++ {
			c.Spawn(func(cc *Ctx) {
				cc.Spawn(func(*Ctx) { ran.Add(1) })
			})
		}
	})
	if ran.Load() != 50 {
		t.Errorf("%d of 50 grandchildren ran before Run returned", ran.Load())
	}
}

func TestPoolWorkerIDs(t *testing.T) {
	pool := NewPool(5)
	defer pool.Close()
	pool.Run(func(c *Ctx) {
		if c.Worker() < 0 || c.Worker() >= 5 {
			t.Errorf("worker id %d out of range", c.Worker())
		}
		if c.Pool() != pool {
			t.Error("Ctx.Pool mismatch")
		}
	})
}

func TestPoolSingleWorker(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	coverageCheck(t, 500, func(mark func(int)) {
		pool.ParallelFor(500, 7, func(lo, hi int, c *Ctx) {
			for i := lo; i < hi; i++ {
				mark(i)
			}
		})
	})
}

func TestPoolSequentialRuns(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for round := 0; round < 10; round++ {
		var count atomic.Int32
		pool.ParallelFor(100, 5, func(lo, hi int, c *Ctx) {
			count.Add(int32(hi - lo))
		})
		if count.Load() != 100 {
			t.Fatalf("round %d: covered %d of 100", round, count.Load())
		}
	}
}

func TestDefaultGrain(t *testing.T) {
	if g := DefaultGrain(0, 4); g != 1 {
		t.Errorf("DefaultGrain(0,4) = %d, want 1", g)
	}
	if g := DefaultGrain(1<<20, 1); g != 2048 {
		t.Errorf("DefaultGrain(1M,1) = %d, want 2048 (cap)", g)
	}
	if g := DefaultGrain(64, 8); g != 1 {
		t.Errorf("DefaultGrain(64,8) = %d, want 1", g)
	}
}

func TestNewPoolPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

func TestHolderLazyInit(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var inits atomic.Int32
	h := NewHolder(4, func() []int {
		inits.Add(1)
		return make([]int, 8)
	})
	pool.ParallelFor(1000, 10, func(lo, hi int, c *Ctx) {
		v := h.View(c)
		(*v)[0]++
	})
	if n := inits.Load(); n < 1 || n > 4 {
		t.Errorf("holder initialised %d views, want 1..4", n)
	}
	total := 0
	h.Each(func(v *[]int) { total += (*v)[0] })
	if total != countChunks(1000, 10) {
		t.Errorf("holder views total %d, want %d chunks", total, countChunks(1000, 10))
	}
}

// countChunks returns the number of leaf chunks cilk_for produces for n
// iterations at the given grain (binary splitting).
func countChunks(n, grain int) int {
	if n <= grain {
		return 1
	}
	mid := n / 2
	return countChunks(mid, grain) + countChunks(n-mid, grain)
}

func TestReducerMax(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	r := NewReducerMax(4, 0)
	pool.ParallelFor(1000, 16, func(lo, hi int, c *Ctx) {
		for i := lo; i < hi; i++ {
			r.Update(c, i%997)
		}
	})
	if got := r.Get(); got != 996 {
		t.Errorf("ReducerMax = %d, want 996", got)
	}
	empty := NewReducerMax(4, -5)
	if got := empty.Get(); got != -5 {
		t.Errorf("empty reducer = %d, want identity -5", got)
	}
}

func TestDequeOrder(t *testing.T) {
	var d deque
	mk := func(id int) task { return task{fn: func(*Ctx) { _ = id }} }
	d.pushBottom(mk(1))
	d.pushBottom(mk(2))
	d.pushBottom(mk(3))
	if d.size() != 3 {
		t.Fatalf("size = %d", d.size())
	}
	if _, ok := d.stealTop(); !ok {
		t.Fatal("stealTop failed")
	}
	if _, ok := d.popBottom(); !ok {
		t.Fatal("popBottom failed")
	}
	if d.size() != 1 {
		t.Fatalf("size = %d after pop+steal, want 1", d.size())
	}
	d.popBottom()
	if _, ok := d.popBottom(); ok {
		t.Error("popBottom on empty deque succeeded")
	}
	if _, ok := d.stealTop(); ok {
		t.Error("stealTop on empty deque succeeded")
	}
}
