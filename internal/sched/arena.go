package sched

// Arena is a per-worker free list of reusable int32 buffers — the
// sync.Pool-style scratch arena behind the zero-alloc kernel hot paths
// (ROADMAP item 2). Unlike sync.Pool it is keyed by worker id, so a buffer
// is always recycled on the worker that released it: no cross-worker
// synchronisation on the hot path and no GC-triggered eviction, which is
// what lets testing.AllocsPerRun pin the steady state at zero.
//
// Get and Put for one worker id must only be called from that worker (or,
// between parallel regions, from the coordinating goroutine); distinct
// worker ids never contend.
type Arena struct {
	shards []arenaShard
}

// arenaShard pads per-worker free lists so neighbouring workers' recycling
// does not share a cache line — the same reason the paper stores localFC
// arrays "contiguously in memory (but without sharing a cache line)".
type arenaShard struct {
	free [][]int32
	_    [40]byte
}

// NewArena creates an arena for the given worker count (>= 1 enforced).
func NewArena(workers int) *Arena {
	if workers < 1 {
		workers = 1
	}
	return &Arena{shards: make([]arenaShard, workers)}
}

// Workers returns the number of per-worker shards.
func (a *Arena) Workers() int { return len(a.shards) }

// Get returns a zero-length buffer with capacity >= capHint, recycled from
// worker w's free list when one is available. The buffer is NOT zeroed
// beyond its length; callers append or overwrite.
func (a *Arena) Get(w, capHint int) []int32 {
	s := &a.shards[w]
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		if cap(b) >= capHint {
			return b[:0]
		}
		// Too small for this request: let it go and allocate at size.
	}
	return make([]int32, 0, capHint)
}

// Put returns b to worker w's free list for reuse. Zero-capacity buffers
// are dropped.
func (a *Arena) Put(w int, b []int32) {
	if cap(b) == 0 {
		return
	}
	s := &a.shards[w]
	s.free = append(s.free, b[:0])
}

// Drain moves every pooled buffer of every shard into shard 0, so a
// single-threaded phase (e.g. a level barrier) can redistribute or reuse
// chunks produced by any worker. Call only between parallel regions.
func (a *Arena) Drain() {
	dst := &a.shards[0]
	for i := 1; i < len(a.shards); i++ {
		s := &a.shards[i]
		dst.free = append(dst.free, s.free...)
		for j := range s.free {
			s.free[j] = nil
		}
		s.free = s.free[:0]
	}
}

// Arena returns the team's resident scratch arena (created with the team,
// sized to its workers). Kernels running repeatedly on one team recycle
// their per-worker buffers through it instead of reallocating per call.
func (t *Team) Arena() *Arena { return t.arena }

// Arena returns the pool's resident scratch arena (created with the pool,
// sized to its workers).
func (p *Pool) Arena() *Arena { return p.arena }
