package e2e

import (
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// daemonConfig is the micserved command line the supervisor starts. Fault
// rates of zero leave the corresponding -fault-* flag off.
type daemonConfig struct {
	workers       int
	kernelWorkers int
	queueDepth    int
	jobTimeout    time.Duration
	drainTimeout  time.Duration

	faultSeed     uint64
	panicRate     float64
	stallRate     float64
	stall         time.Duration
	readRate      float64
	writeRate     float64
	stragglerRate float64

	// Cluster mode: a non-empty name turns the -name/-peers flags on.
	name          string
	peers         string
	replication   int
	probeInterval time.Duration
	probeTimeout  time.Duration
	probeFails    int
}

func (c daemonConfig) args(addr string) []string {
	a := []string{
		"-addr", addr,
		"-workers", fmt.Sprint(c.workers),
		"-kernel-workers", fmt.Sprint(c.kernelWorkers),
		"-queue", fmt.Sprint(c.queueDepth),
		"-job-timeout", c.jobTimeout.String(),
		"-drain-timeout", c.drainTimeout.String(),
		"-fault-seed", fmt.Sprint(c.faultSeed),
	}
	if c.panicRate > 0 {
		a = append(a, "-fault-panic-rate", fmt.Sprint(c.panicRate))
	}
	if c.stallRate > 0 {
		a = append(a, "-fault-stall-rate", fmt.Sprint(c.stallRate), "-fault-stall", c.stall.String())
	}
	if c.readRate > 0 {
		a = append(a, "-fault-read-rate", fmt.Sprint(c.readRate))
	}
	if c.writeRate > 0 {
		a = append(a, "-fault-write-rate", fmt.Sprint(c.writeRate))
	}
	if c.stragglerRate > 0 {
		a = append(a, "-straggler-rate", fmt.Sprint(c.stragglerRate))
	}
	if c.name != "" {
		a = append(a, "-name", c.name, "-peers", c.peers)
		if c.replication > 0 {
			a = append(a, "-replication", fmt.Sprint(c.replication))
		}
		if c.probeInterval > 0 {
			a = append(a, "-probe-interval", c.probeInterval.String())
		}
		if c.probeTimeout > 0 {
			a = append(a, "-probe-timeout", c.probeTimeout.String())
		}
		if c.probeFails > 0 {
			a = append(a, "-probe-fails", fmt.Sprint(c.probeFails))
		}
	}
	return a
}

// daemon supervises one micserved process: it owns the port, captures
// stderr, reaps the process from a goroutine, and turns "died when not
// told to" into an invariant violation.
type daemon struct {
	t    tb
	cfg  daemonConfig
	addr string
	cmd  *exec.Cmd

	mu         sync.Mutex
	stderr     strings.Builder
	expectExit bool

	exited chan struct{} // closed after the process is reaped
}

// startDaemon builds the command line, starts the process and waits for
// /healthz. Port collisions (the pick-then-bind window) retry with a fresh
// port.
func startDaemon(t tb, bin string, cfg daemonConfig) *daemon {
	t.Helper()
	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		d := &daemon{t: t, cfg: cfg, exited: make(chan struct{})}
		port, err := freePort()
		if err != nil {
			t.Fatalf("picking a port: %v", err)
		}
		d.addr = fmt.Sprintf("127.0.0.1:%d", port)
		d.cmd = exec.Command(bin, cfg.args(d.addr)...)
		d.cmd.Stderr = &lockedWriter{d: d}
		d.cmd.Stdout = d.cmd.Stderr
		if err := d.cmd.Start(); err != nil {
			t.Fatalf("starting micserved: %v", err)
		}
		go func() {
			d.cmd.Wait()
			close(d.exited)
		}()
		if d.waitHealthy(20 * time.Second) {
			return d
		}
		lastErr = d.stderrText()
		d.kill()
	}
	t.Fatalf("micserved did not become healthy after 3 attempts; last stderr:\n%s", lastErr)
	return nil
}

// startDaemonAt starts micserved bound to a pre-agreed address. Cluster
// peers must know each other's URLs before any process starts, so the
// pick-then-bind retry of startDaemon does not apply here; a collision on
// a just-probed free port surfaces as a startup failure.
func startDaemonAt(t tb, bin string, cfg daemonConfig, addr string) *daemon {
	t.Helper()
	d := &daemon{t: t, cfg: cfg, addr: addr, exited: make(chan struct{})}
	d.cmd = exec.Command(bin, cfg.args(d.addr)...)
	d.cmd.Stderr = &lockedWriter{d: d}
	d.cmd.Stdout = d.cmd.Stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("starting micserved %s: %v", cfg.name, err)
	}
	go func() {
		d.cmd.Wait()
		close(d.exited)
	}()
	if !d.waitHealthy(20 * time.Second) {
		out := d.stderrText()
		d.kill()
		t.Fatalf("micserved %s at %s did not become healthy; stderr:\n%s", cfg.name, addr, out)
	}
	return d
}

// freePort asks the kernel for an unused TCP port.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port, nil
}

type lockedWriter struct{ d *daemon }

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	w.d.stderr.Write(p)
	return len(p), nil
}

func (d *daemon) url() string { return "http://" + d.addr }

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// alive reports whether the process has not yet been reaped.
func (d *daemon) alive() bool {
	select {
	case <-d.exited:
		return false
	default:
		return true
	}
}

// waitHealthy polls /healthz until it answers 200, the deadline passes, or
// the process dies.
func (d *daemon) waitHealthy(within time.Duration) bool {
	hc := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if !d.alive() {
			return false
		}
		resp, err := hc.Get(d.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}

// checkAlive is the "daemon never dies except when told" invariant, plus
// the race-detector and runtime-crash scans of everything the process has
// written so far.
func (d *daemon) checkAlive() {
	d.t.Helper()
	d.mu.Lock()
	expected := d.expectExit
	d.mu.Unlock()
	if !d.alive() && !expected {
		d.t.Fatalf("INVARIANT daemon-alive: micserved died unasked; stderr:\n%s", d.stderrText())
	}
	out := d.stderrText()
	for _, marker := range []string{"DATA RACE", "fatal error:"} {
		if strings.Contains(out, marker) {
			d.t.Fatalf("INVARIANT daemon-clean: %q in micserved output:\n%s", marker, out)
		}
	}
}

// terminate sends SIGTERM and enforces the drain invariant: the process
// must exit 0 within the drain timeout plus scheduling slack. Returns the
// captured output for further checks.
func (d *daemon) terminate() string {
	d.t.Helper()
	d.mu.Lock()
	d.expectExit = true
	d.mu.Unlock()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-d.exited:
	case <-time.After(d.cfg.drainTimeout + 15*time.Second):
		d.kill()
		d.t.Fatalf("INVARIANT drain-bounded: micserved still running %s after SIGTERM (drain-timeout %s); stderr:\n%s",
			d.cfg.drainTimeout+15*time.Second, d.cfg.drainTimeout, d.stderrText())
	}
	if code := d.cmd.ProcessState.ExitCode(); code != 0 {
		d.t.Fatalf("INVARIANT drain-clean: micserved exited %d after SIGTERM; stderr:\n%s", code, d.stderrText())
	}
	return d.stderrText()
}

// killExpected SIGKILLs the process as a scripted chaos action (shard
// kill). Unlike kill it first marks the exit expected, so a later
// checkAlive on this daemon does not read the corpse as a violation.
func (d *daemon) killExpected() {
	d.t.Helper()
	d.mu.Lock()
	d.expectExit = true
	d.mu.Unlock()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatalf("SIGKILL %s: %v", d.cfg.name, err)
	}
	<-d.exited
}

// kill hard-stops the process (cleanup only; never part of an invariant).
func (d *daemon) kill() {
	if d.alive() {
		d.cmd.Process.Kill()
		<-d.exited
	}
}
