// Package e2e is the black-box chaos oracle for the serving path: it
// compiles the real cmd/micserved binary, starts it on a random port with
// fault injection armed, and drives seeded randomized action sequences —
// valid and malformed submissions, polls, cancels, overload bursts past
// the queue depth, graph-file truncation/corruption mid-fleet, injected
// scheduler panics/stalls, straggler cores, read/write I/O faults, and
// SIGTERM/restart cycles — while continuously asserting the invariants
// every later serving change inherits as a regression gate:
//
//   - the daemon never dies except when told to (and never trips the race
//     detector when built with -race);
//   - no accepted job is ever stuck non-terminal: every result stream the
//     oracle follows closes cleanly, and failed/cancelled jobs end with a
//     terminal error line;
//   - the /metricsz jobs_total counters are conserved at every sample:
//     submitted = rejected + succeeded + failed + cancelled + in_flight;
//   - every 429 response carries Retry-After;
//   - SIGTERM drains inside -drain-timeout with every accepted job
//     reaching a terminal streamed status, and the process exits 0;
//   - identical -chaos.seed runs produce byte-identical action scripts and
//     (for the deterministic replay scenario) byte-identical result
//     payloads.
//
// The harness is layered like marcus/td's e2e suite: a binary builder
// (build.go), a process supervisor (daemon.go), an HTTP actor (client.go),
// a seeded action generator with a shrinking-friendly canonical script log
// (actions.go), a graph-file pool with deterministic corruption
// (files.go), and the invariant-checking executors (run.go, replay.go).
// All harness logic lives in non-test files so micvet's analyzers
// (ctxloop, faultsite, ...) and staticcheck police it like any other
// package.
//
// Tiers:
//
//	go test ./test/e2e/                                        # smoke (75 actions)
//	go test ./test/e2e/ -args -chaos.actions=2000              # long tier
//	go test ./test/e2e/ -args -chaos.seed=1755 -chaos.actions=75   # reproduce a logged run
package e2e

import "flag"

// Chaos tiers are flag-controlled so CI runs a short smoke sequence and a
// long tier stays runnable locally against the same code path. The seed
// fully determines the action script: to reproduce a failure, rerun with
// the seed and action count printed at the start of the failing run.
var (
	chaosActions = flag.Int("chaos.actions", 75, "number of chaos actions per run (75 = CI smoke tier)")
	chaosSeed    = flag.Uint64("chaos.seed", 1, "seed for the chaos action generator; same seed = same script")
)

// tb is the slice of testing.TB the harness needs. Keeping the harness off
// the testing package lets every non-test file type-check standalone (which
// is how micvet loads packages) while tests pass *testing.T straight in.
type tb interface {
	Helper()
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}
