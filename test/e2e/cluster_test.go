package e2e

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Mirrors of the /healthz and /metricsz cluster blocks (the oracle stays
// black-box: it decodes the wire shapes, it does not import the server).
type healthCluster struct {
	Cluster struct {
		Self    string   `json:"self"`
		Members []string `json:"members"`
	} `json:"cluster"`
}

type metricsCluster struct {
	JobsTotal jobsTotal `json:"jobs_total"`
	Cluster   struct {
		Self        string               `json:"self"`
		Members     []string             `json:"members"`
		Shards      map[string]jobsTotal `json:"shards"`
		JobsTotal   jobsTotal            `json:"jobs_total"`
		Unreachable []string             `json:"unreachable"`
	} `json:"cluster"`
}

func conservedTotals(t tb, jt jobsTotal, what string) {
	t.Helper()
	if jt.Submitted != jt.Rejected+jt.Succeeded+jt.Failed+jt.Cancelled+jt.InFlight {
		t.Fatalf("INVARIANT conservation (%s): submitted=%d != rejected=%d+succeeded=%d+failed=%d+cancelled=%d+in_flight=%d",
			what, jt.Submitted, jt.Rejected, jt.Succeeded, jt.Failed, jt.Cancelled, jt.InFlight)
	}
}

func awaitTerminalE2E(t tb, c *client, id string, within time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		code, v, err := c.jobStatus(id)
		if err != nil {
			t.Fatalf("polling %s: %v", id, err)
		}
		if code == http.StatusOK && terminalStatuses[v.Status] {
			return v
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %s", id, within)
	return jobView{}
}

// TestClusterShardKill is the shard-kill chaos action against real
// micserved processes in cluster mode: boot three peers, run jobs through
// every entry node, SIGKILL one shard, and hold the survivors to the
// cluster invariants — they stay healthy and keep serving, the dead
// shard's jobs fail loudly with terminal error lines rather than
// vanishing, per-shard conservation survives summation, and the corpse is
// reported unreachable.
func TestClusterShardKill(t *testing.T) {
	bin := servedBinary(t)
	names := []string{"n1", "n2", "n3"}
	addrs := make([]string, len(names))
	peerSpec := make([]string, len(names))
	for i, name := range names {
		port, err := freePort()
		if err != nil {
			t.Fatalf("picking a port: %v", err)
		}
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", port)
		peerSpec[i] = fmt.Sprintf("%s=http://%s", name, addrs[i])
	}
	peers := strings.Join(peerSpec, ",")

	daemons := make([]*daemon, len(names))
	clients := make([]*client, len(names))
	for i, name := range names {
		cfg := daemonConfig{
			workers:       2,
			kernelWorkers: 2,
			queueDepth:    64,
			jobTimeout:    30 * time.Second,
			drainTimeout:  15 * time.Second,
			faultSeed:     1,
			name:          name,
			peers:         peers,
			replication:   2,
			probeInterval: 100 * time.Millisecond,
			probeTimeout:  time.Second,
			probeFails:    2,
		}
		daemons[i] = startDaemonAt(t, bin, cfg, addrs[i])
		clients[i] = newClient(t, daemons[i])
	}
	defer func() {
		for _, d := range daemons {
			d.kill()
		}
	}()

	// Jobs on eight distinct placement keys, submitted through all three
	// entries, so every shard both serves and forwards.
	var ids []string
	var specs []string
	for _, suite := range []string{"pwtk", "hood", "bmw3_2", "msdoor"} {
		for _, scale := range []int{4, 8} {
			specs = append(specs, fmt.Sprintf(
				`{"kind":"coloring","variant":"seq","graph":{"suite":%q,"scale":%d}}`, suite, scale))
		}
	}
	for i, spec := range specs {
		res, err := clients[i%3].submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if res.code != http.StatusAccepted {
			t.Fatalf("INVARIANT accept-wellformed: submit %d got %d: %s", i, res.code, res.body)
		}
		if !strings.Contains(res.view.ID, "-job-") {
			t.Fatalf("cluster job ID %q carries no shard prefix", res.view.ID)
		}
		ids = append(ids, res.view.ID)
	}
	for _, id := range ids {
		if v := awaitTerminalE2E(t, clients[0], id, 60*time.Second); v.Status != "succeeded" {
			t.Fatalf("job %s finished %s: %s", id, v.Status, v.Error)
		}
	}

	// The victim is whichever shard served the first job; the survivors
	// are everyone else.
	victim := ids[0][:strings.LastIndex(ids[0], "-job-")]
	victimIdx := -1
	for i, name := range names {
		if name == victim {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		t.Fatalf("job ID %q names no cluster member", ids[0])
	}
	var survivors []int
	for i := range names {
		if i != victimIdx {
			survivors = append(survivors, i)
		}
	}
	var victimJobs []string
	for _, id := range ids {
		if strings.HasPrefix(id, victim+"-job-") {
			victimJobs = append(victimJobs, id)
		}
	}

	daemons[victimIdx].killExpected()

	// Survivors must evict the dead peer from their rings within a few
	// probe intervals.
	hc := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		evicted := 0
		for _, i := range survivors {
			resp, err := hc.Get(daemons[i].url() + "/healthz")
			if err != nil {
				t.Fatalf("survivor %s healthz: %v", names[i], err)
			}
			var h healthCluster
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("survivor %s healthz: %v", names[i], err)
			}
			stillThere := false
			for _, m := range h.Cluster.Members {
				if m == victim {
					stillThere = true
				}
			}
			if !stillThere {
				evicted++
			}
		}
		if evicted == len(survivors) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("INVARIANT shard-evicted: survivors still list %s as a member 15s after SIGKILL", victim)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, i := range survivors {
		daemons[i].checkAlive()
	}

	// The dead shard's jobs fail loudly: status answers 502 naming the
	// shard, and the result stream ends in a terminal error line.
	entry := clients[survivors[0]]
	for _, id := range victimJobs {
		code, _, err := entry.jobStatus(id)
		if err != nil {
			t.Fatalf("dead-shard status %s: %v", id, err)
		}
		if code != http.StatusBadGateway {
			t.Fatalf("INVARIANT dead-shard-loud: status of %s got %d, want 502", id, code)
		}
		payload, err := entry.result(id)
		if err != nil {
			t.Fatalf("dead-shard result %s: %v", id, err)
		}
		lines := strings.Split(strings.TrimSpace(payload), "\n")
		var last map[string]any
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
			t.Fatalf("INVARIANT terminal-stream: dead-shard result %s last line %q is not JSON: %v",
				id, lines[len(lines)-1], err)
		}
		if last["type"] != "error" || !strings.Contains(fmt.Sprint(last["error"]), "unreachable") {
			t.Fatalf("INVARIANT dead-shard-loud: result of %s does not end in a terminal error line: %v", id, last)
		}
	}

	// Survivors keep serving, including keys the victim used to own.
	for i, spec := range specs {
		c := clients[survivors[i%len(survivors)]]
		res, err := c.submit(spec)
		if err != nil {
			t.Fatalf("post-kill submit %d: %v", i, err)
		}
		if res.code != http.StatusAccepted {
			t.Fatalf("INVARIANT accept-wellformed: post-kill submit %d got %d: %s", i, res.code, res.body)
		}
		if strings.HasPrefix(res.view.ID, victim+"-job-") {
			t.Fatalf("INVARIANT shard-evicted: post-kill job %s routed to dead shard %s", res.view.ID, victim)
		}
		if v := awaitTerminalE2E(t, c, res.view.ID, 60*time.Second); v.Status != "succeeded" {
			t.Fatalf("post-kill job %s finished %s: %s", res.view.ID, v.Status, v.Error)
		}
	}

	// Per-shard conservation holds on every survivor's cluster view, the
	// summed totals are exactly the field-wise shard sum, and the corpse
	// is reported unreachable rather than silently missing.
	for _, i := range survivors {
		resp, err := hc.Get(daemons[i].url() + "/metricsz")
		if err != nil {
			t.Fatalf("survivor %s metricsz: %v", names[i], err)
		}
		var m metricsCluster
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("survivor %s metricsz: %v", names[i], err)
		}
		conservedTotals(t, m.JobsTotal, names[i]+" local")
		conservedTotals(t, m.Cluster.JobsTotal, names[i]+" summed")
		if len(m.Cluster.Shards) != len(survivors) {
			t.Fatalf("survivor %s cluster block covers %d shards, want %d", names[i], len(m.Cluster.Shards), len(survivors))
		}
		var sum jobsTotal
		for shard, jt := range m.Cluster.Shards {
			conservedTotals(t, jt, names[i]+" shard "+shard)
			sum.Submitted += jt.Submitted
			sum.Rejected += jt.Rejected
			sum.Accepted += jt.Accepted
			sum.Succeeded += jt.Succeeded
			sum.Failed += jt.Failed
			sum.Cancelled += jt.Cancelled
			sum.InFlight += jt.InFlight
		}
		if sum != m.Cluster.JobsTotal {
			t.Fatalf("INVARIANT conservation: survivor %s shard sum %+v != cluster jobs_total %+v",
				names[i], sum, m.Cluster.JobsTotal)
		}
		found := false
		for _, u := range m.Cluster.Unreachable {
			if u == victim {
				found = true
			}
		}
		if !found {
			t.Fatalf("INVARIANT dead-shard-loud: survivor %s does not report %s unreachable: %+v",
				names[i], victim, m.Cluster.Unreachable)
		}
	}

	// Survivors drain cleanly on SIGTERM — cluster mode keeps the
	// drain-bounded and drain-clean invariants.
	for _, i := range survivors {
		daemons[i].terminate()
	}
}
