//go:build race

package e2e

// raceEnabled mirrors the test binary's -race state so the daemon binary is
// built with the race detector exactly when the oracle itself runs under
// it: a data race anywhere in the serving path then kills the daemon with
// a DATA RACE report, which the supervisor treats as a daemon death —
// an invariant violation.
const raceEnabled = true
