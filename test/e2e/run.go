package e2e

import (
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"micgraph/internal/graphio"
)

// trackedJob is one accepted submission the oracle still owes checks for:
// its result stream must close, a corrupted-file job must not succeed, and
// a successful export must leave a loadable file (a failed one must not).
type trackedJob struct {
	id         string
	expectFail bool
	isExport   bool
	exportPath string
	f          *follower
}

// chaosRunner executes a generated script against live daemon incarnations
// while enforcing the oracle's invariants after every step.
type chaosRunner struct {
	t    tb
	bin  string
	cfg  daemonConfig
	out  string // $OUT: export target dir
	pool *filePool

	d       *daemon
	c       *client
	tracked []trackedJob
}

// runChaos is the oracle's entry point: generate the script for (seed, n),
// log it, then execute it, finishing with a quiesce and a clean SIGTERM
// drain whatever the script ended on.
func runChaos(t tb, seed uint64, n int) {
	t.Helper()
	script := genScript(seed, n)
	t.Logf("chaos seed=%d actions=%d script:\n%s", seed, n, scriptLog(script))

	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	defer os.RemoveAll(dir)
	outDir := dir + "/out"
	poolDir := dir + "/pool"
	for _, d := range []string{outDir, poolDir} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatalf("chaos: %v", err)
		}
	}

	r := &chaosRunner{
		t:    t,
		bin:  servedBinary(t),
		cfg:  chaosDaemon(seed),
		out:  outDir,
		pool: newFilePool(t, poolDir),
	}
	r.d = startDaemon(t, r.bin, r.cfg)
	defer func() { r.d.kill() }()
	r.c = newClient(t, r.d)

	for i, a := range script {
		r.step(i, a)
		r.d.checkAlive()
	}

	// Final phase: wait for every in-flight job to reach a terminal state,
	// re-check conservation on a quiet daemon, settle all per-job checks,
	// then SIGTERM and hold the drain to its bound.
	r.quiesce(90 * time.Second)
	m := r.checkMetrics()
	if m.JobsTotal.Accepted != m.JobsTotal.Succeeded+m.JobsTotal.Failed+m.JobsTotal.Cancelled {
		t.Fatalf("INVARIANT conservation: quiesced daemon has accepted=%d != succeeded=%d+failed=%d+cancelled=%d",
			m.JobsTotal.Accepted, m.JobsTotal.Succeeded, m.JobsTotal.Failed, m.JobsTotal.Cancelled)
	}
	r.settleTracked()
	r.d.terminate()
}

// resolve substitutes the script placeholders with this run's directories.
func (r *chaosRunner) resolve(body string) string {
	body = strings.ReplaceAll(body, "$OUT", r.out)
	return strings.ReplaceAll(body, "$F", r.pool.dir)
}

func (r *chaosRunner) step(i int, a action) {
	r.t.Helper()
	switch a.Op {
	case opSubmit:
		r.submit(i, a)
	case opMalformed:
		res, err := r.c.submit(a.Body)
		if err != nil {
			r.t.Fatalf("action %04d: submit: %v", i, err)
		}
		if res.code != http.StatusBadRequest {
			r.t.Fatalf("INVARIANT reject-malformed: action %04d body %s got %d (want 400): %s",
				i, a.Body, res.code, res.body)
		}
	case opOverload:
		for _, body := range a.Burst {
			r.submit(i, action{Op: opSubmit, Body: body})
		}
	case opPoll:
		if len(r.tracked) == 0 {
			return
		}
		tj := r.tracked[a.Target%len(r.tracked)]
		code, v, err := r.c.jobStatus(tj.id)
		if err != nil {
			r.t.Fatalf("action %04d: poll %s: %v", i, tj.id, err)
		}
		r.checkJobView(i, code, v, tj.id)
	case opProbe:
		if len(r.tracked) == 0 {
			return
		}
		tj := r.tracked[a.Target%len(r.tracked)]
		code, v, err := r.c.jobStatus(tj.id)
		if err != nil {
			r.t.Fatalf("action %04d: latency-probe %s: %v", i, tj.id, err)
		}
		r.checkJobView(i, code, v, tj.id)
		if code == http.StatusOK {
			r.checkSpans(i, v, tj.id)
		}
	case opCancel:
		if len(r.tracked) == 0 {
			return
		}
		tj := r.tracked[a.Target%len(r.tracked)]
		code, err := r.c.cancel(tj.id)
		if err != nil {
			r.t.Fatalf("action %04d: cancel %s: %v", i, tj.id, err)
		}
		if code != http.StatusOK && code != http.StatusNotFound {
			r.t.Fatalf("action %04d: cancel %s got %d", i, tj.id, code)
		}
	case opList:
		views, err := r.c.list()
		if err != nil {
			r.t.Fatalf("action %04d: list: %v", i, err)
		}
		for _, v := range views {
			r.checkJobView(i, http.StatusOK, v, v.ID)
			r.checkSpans(i, v, v.ID)
		}
	case opMetrics:
		r.checkMetrics()
	case opCorrupt:
		r.pool.corrupt(a.File)
	case opRestart:
		r.restart()
	default:
		r.t.Fatalf("action %04d: unknown op %q", i, a.Op)
	}
}

// submit performs one POST /jobs and classifies the outcome. 202 starts a
// follower; 429 must carry Retry-After; anything else on a well-formed body
// is a violation.
func (r *chaosRunner) submit(i int, a action) {
	r.t.Helper()
	res, err := r.c.submit(r.resolve(a.Body))
	if err != nil {
		r.t.Fatalf("action %04d: submit: %v", i, err)
	}
	switch res.code {
	case http.StatusAccepted:
		tj := trackedJob{id: res.view.ID, expectFail: a.ExpectFail, isExport: a.IsExport, f: r.c.follow(res.view.ID)}
		if a.IsExport {
			tj.exportPath = r.exportTarget(a.Body)
		}
		r.tracked = append(r.tracked, tj)
	case http.StatusTooManyRequests:
		if res.retryAfter == "" {
			r.t.Fatalf("INVARIANT retry-after: action %04d got 429 without Retry-After: %s", i, res.body)
		}
	default:
		r.t.Fatalf("INVARIANT accept-wellformed: action %04d body %s got %d: %s",
			i, a.Body, res.code, res.body)
	}
}

// exportTarget extracts and resolves the "output" path of an export body.
func (r *chaosRunner) exportTarget(body string) string {
	const key = `"output":"`
	at := strings.Index(body, key)
	end := strings.Index(body[at+len(key):], `"`)
	return r.resolve(body[at+len(key) : at+len(key)+end])
}

var validStatuses = map[string]bool{
	"queued": true, "running": true, "succeeded": true, "failed": true, "cancelled": true,
}

// checkJobView validates one observed job view. 404 is legal only for jobs
// old enough to have been trimmed by retention.
func (r *chaosRunner) checkJobView(i, code int, v jobView, id string) {
	r.t.Helper()
	switch code {
	case http.StatusOK:
		if !validStatuses[v.Status] {
			r.t.Fatalf("INVARIANT status-valid: action %04d job %s has status %q", i, id, v.Status)
		}
	case http.StatusNotFound:
		// Retention trims the oldest terminal jobs past MaxJobs (1024); any
		// tracked job can legally disappear only on runs long enough for that.
		if len(r.tracked) <= 1024 {
			r.t.Fatalf("INVARIANT job-retained: action %04d job %s is 404 but only %d jobs were accepted",
				i, id, len(r.tracked))
		}
	default:
		r.t.Fatalf("action %04d: job %s status code %d", i, id, code)
	}
}

var terminalStatuses = map[string]bool{"succeeded": true, "failed": true, "cancelled": true}

// checkSpans enforces the latency-span invariants on one observed job view:
// a terminal job must expose spans, every span must be non-negative, and the
// queue/cache/exec/flush components — disjoint sub-intervals of the job's
// lifetime on one clock — must sum to at most the total.
func (r *chaosRunner) checkSpans(i int, v jobView, id string) {
	r.t.Helper()
	sp := v.Spans
	if !terminalStatuses[v.Status] {
		if sp != nil {
			r.t.Fatalf("INVARIANT span-terminal: action %04d job %s is %s but already exposes spans %+v",
				i, id, v.Status, *sp)
		}
		return
	}
	if sp == nil {
		r.t.Fatalf("INVARIANT span-present: action %04d terminal job %s (%s) has no spans", i, id, v.Status)
	}
	for _, f := range []struct {
		name string
		ns   int64
	}{
		{"queue_ns", sp.QueueNS}, {"cache_ns", sp.CacheNS}, {"exec_ns", sp.ExecNS},
		{"flush_ns", sp.FlushNS}, {"total_ns", sp.TotalNS},
	} {
		if f.ns < 0 {
			r.t.Fatalf("INVARIANT span-monotonic: action %04d job %s span %s is negative (%d)", i, id, f.name, f.ns)
		}
	}
	if sum := sp.QueueNS + sp.CacheNS + sp.ExecNS + sp.FlushNS; sum > sp.TotalNS {
		r.t.Fatalf("INVARIANT span-sum: action %04d job %s span components sum to %dns > total %dns (%+v)",
			i, id, sum, sp.TotalNS, *sp)
	}
}

// checkMetrics samples /metricsz and enforces the conservation laws on the
// snapshot. The driver is single-threaded, so submission counters cannot
// move between the two views inside one handler call; only completion-side
// counters may lag by the workers currently handing off.
func (r *chaosRunner) checkMetrics() metricsSnap {
	r.t.Helper()
	m, err := r.c.metrics()
	if err != nil {
		r.t.Fatalf("metrics: %v", err)
	}
	jt := m.JobsTotal
	if jt.Submitted != jt.Rejected+jt.Succeeded+jt.Failed+jt.Cancelled+jt.InFlight {
		r.t.Fatalf("INVARIANT conservation: submitted=%d != rejected=%d+succeeded=%d+failed=%d+cancelled=%d+in_flight=%d (%+v)",
			jt.Submitted, jt.Rejected, jt.Succeeded, jt.Failed, jt.Cancelled, jt.InFlight, jt)
	}
	if jt.Accepted != jt.Submitted-jt.Rejected {
		r.t.Fatalf("INVARIANT conservation: accepted=%d != submitted=%d - rejected=%d", jt.Accepted, jt.Submitted, jt.Rejected)
	}
	if jt.InFlight < 0 {
		r.t.Fatalf("INVARIANT conservation: negative in_flight %d", jt.InFlight)
	}
	if max := int64(r.cfg.queueDepth + 2*r.cfg.workers); jt.InFlight > max {
		r.t.Fatalf("INVARIANT backpressure: in_flight=%d exceeds queue+2*workers=%d", jt.InFlight, max)
	}
	if m.Queue.Submitted != jt.Accepted {
		r.t.Fatalf("INVARIANT conservation: queue submitted=%d != jobs accepted=%d", m.Queue.Submitted, jt.Accepted)
	}
	return m
}

// quiesce polls until no job is queued, running or in flight — the
// no-stuck-jobs invariant. Every job carries a deadline, so a bounded wait
// suffices; exceeding it means something is wedged non-terminal.
func (r *chaosRunner) quiesce(within time.Duration) {
	r.t.Helper()
	deadline := time.Now().Add(within)
	for {
		m, err := r.c.metrics()
		if err != nil {
			r.t.Fatalf("quiesce: metrics: %v", err)
		}
		if m.JobsTotal.InFlight == 0 && m.Queue.Queued == 0 && m.Queue.Running == 0 {
			return
		}
		if time.Now().After(deadline) {
			views, _ := r.c.list()
			var stuck []string
			for _, v := range views {
				if v.Status == "queued" || v.Status == "running" {
					stuck = append(stuck, fmt.Sprintf("%s(%s %s)", v.ID, v.Kind, v.Status))
				}
			}
			r.t.Fatalf("INVARIANT no-stuck-jobs: still %d in flight after %s: %s",
				m.JobsTotal.InFlight, within, strings.Join(stuck, " "))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// settleTracked closes out every tracked job of the current incarnation:
// its stream must have ended, its lines must be JSON, an expect-fail job's
// last line must be an error, and export atomicity must hold (success ⇒
// loadable file, failure/cancellation ⇒ no file at all — never a torn one).
func (r *chaosRunner) settleTracked() {
	r.t.Helper()
	for _, tj := range r.tracked {
		if !tj.f.wait(15 * time.Second) {
			r.t.Fatalf("INVARIANT no-stuck-jobs: job %s result stream still open after daemon quiesced/exited", tj.id)
		}
		lines := tj.f.lines(r.t)
		if len(lines) == 0 {
			r.t.Fatalf("INVARIANT terminal-stream: job %s stream closed with no lines at all", tj.id)
		}
		last := lines[len(lines)-1]
		failed := last["type"] == "error"
		if tj.expectFail && !failed {
			r.t.Fatalf("INVARIANT corrupt-rejected: job %s ran on a corrupted graph file but did not fail; last line: %v",
				tj.id, last)
		}
		if tj.isExport {
			_, statErr := os.Stat(tj.exportPath)
			switch {
			case failed && statErr == nil:
				r.t.Fatalf("INVARIANT export-atomic: failed export %s left a file at %s", tj.id, tj.exportPath)
			case failed && !os.IsNotExist(statErr):
				r.t.Fatalf("INVARIANT export-atomic: stat %s: %v", tj.exportPath, statErr)
			case !failed:
				if _, err := graphio.ReadFile(tj.exportPath); err != nil {
					r.t.Fatalf("INVARIANT export-atomic: successful export %s wrote an unloadable file %s: %v",
						tj.id, tj.exportPath, err)
				}
			}
		}
	}
	r.tracked = nil
}

// restart exercises the mid-flight drain path: SIGTERM with jobs queued and
// running, hold the drain to its bound and exit code, settle every tracked
// job against the closed streams, then bring up a fresh incarnation on a
// new port.
func (r *chaosRunner) restart() {
	r.t.Helper()
	r.d.terminate()
	r.settleTracked()
	r.d = startDaemon(r.t, r.bin, r.cfg)
	r.c = newClient(r.t, r.d)
}
