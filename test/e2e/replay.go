package e2e

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"

	"micgraph/internal/xrand"
)

var (
	hexAddr     = regexp.MustCompile(`0x[0-9a-f]+`)
	goroutineID = regexp.MustCompile(`goroutine \d+`)
)

// Replay determinism: one seed must reproduce not just the action script
// but the daemon's observable behaviour — per-job result payloads included.
// That only holds on a deterministic slice of the system, so the replay
// driver pins everything that can race: one queue worker, one kernel
// worker, strictly sequential submits, and only kernels whose scheduling
// is deterministic at a single worker (seq variants and team-based
// dynamic-for, never work-stealing pool variants, never sweeps — simulator
// cells embed wall-clock readings). Faults stay on: the injector's per-site
// streams are seeded, and with sequential jobs the draw order is fixed, so
// even which jobs fail is reproducible.
func replayDaemon(seed uint64) daemonConfig {
	return daemonConfig{
		workers:       1,
		kernelWorkers: 1,
		queueDepth:    8,
		jobTimeout:    60 * time.Second,
		drainTimeout:  30 * time.Second,
		faultSeed:     seed*2654435761 + 2,
		panicRate:     0.02,
		stallRate:     0.05,
		stall:         time.Millisecond,
		readRate:      0.03,
		writeRate:     0.10,
	}
}

// replayBodies derives the deterministic job mix for a seed: n bodies drawn
// from the determinism-safe set, with $F/$OUT placeholders.
func replayBodies(seed uint64, n int) []string {
	rng := xrand.New(seed ^ 0x5ca1ab1e)
	bodies := make([]string, 0, n)
	exports := 0
	for i := 0; i < n; i++ {
		suite := suites[rng.Intn(len(suites))]
		scale := []int{8, 16}[rng.Intn(2)]
		chunk := []int{50, 100, 200}[rng.Intn(3)]
		switch rng.Intn(5) {
		case 0:
			bodies = append(bodies, fmt.Sprintf(
				`{"kind":"bfs","variant":"seq","graph":{"suite":%q,"scale":%d}}`, suite, scale))
		case 1:
			bodies = append(bodies, fmt.Sprintf(
				`{"kind":"coloring","variant":"seq","graph":{"suite":%q,"scale":%d}}`, suite, scale))
		case 2:
			bodies = append(bodies, fmt.Sprintf(
				`{"kind":"irregular","variant":"openmp","iters":%d,"chunk":%d,"graph":{"suite":%q,"scale":%d}}`,
				2+rng.Intn(3), chunk, suite, scale))
		case 3:
			bodies = append(bodies, fmt.Sprintf(
				`{"kind":"coloring","variant":"openmp","chunk":%d,"graph":{"file":"$F/%s"}}`,
				chunk, poolFileName(rng.Intn(len(poolFiles)), 0)))
		default:
			bodies = append(bodies, fmt.Sprintf(
				`{"kind":"export","graph":{"suite":%q,"scale":%d},"output":"$OUT/export-%d.mtx"}`,
				suite, scale, exports))
			exports++
		}
	}
	return bodies
}

// runReplay executes the seed's job mix sequentially against a pinned
// daemon and returns the canonical run log: every submitted body, every
// job's full result payload (run-local paths normalised back to $F/$OUT),
// the sha256 of every export artifact, and the final lifetime totals. Two
// calls with the same seed must return byte-identical logs.
func runReplay(t tb, seed uint64, n int) []byte {
	t.Helper()
	dir, err := os.MkdirTemp("", "replay-*")
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	defer os.RemoveAll(dir)
	outDir := dir + "/out"
	poolDir := dir + "/pool"
	for _, d := range []string{outDir, poolDir} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	pool := newFilePool(t, poolDir)

	d := startDaemon(t, servedBinary(t), replayDaemon(seed))
	defer d.kill()
	c := newClient(t, d)

	// normalize rewrites run-local absolute paths back into placeholders and
	// scrubs runtime noise (heap addresses and goroutine IDs in the stack
	// traces that injected panics embed in error lines) so the log is
	// byte-stable across runs and hosts. The *behavioural* content — which
	// call number panicked, at which site, in which frame — survives intact.
	normalize := func(s string) string {
		s = strings.ReplaceAll(s, outDir, "$OUT")
		s = strings.ReplaceAll(s, poolDir, "$F")
		s = hexAddr.ReplaceAllString(s, "0xADDR")
		return goroutineID.ReplaceAllString(s, "goroutine N")
	}

	var log strings.Builder
	fmt.Fprintf(&log, "replay seed=%d jobs=%d\n", seed, n)
	for i, body := range replayBodies(seed, n) {
		fmt.Fprintf(&log, "--- job %02d %s\n", i, body)
		resolved := strings.ReplaceAll(strings.ReplaceAll(body, "$OUT", outDir), "$F", pool.dir)
		res, err := c.submit(resolved)
		if err != nil {
			t.Fatalf("replay job %02d: %v", i, err)
		}
		if res.code != http.StatusAccepted {
			t.Fatalf("replay job %02d: got %d: %s", i, res.code, res.body)
		}
		id := res.view.ID
		if !waitTerminal(c, id, 60*time.Second) {
			t.Fatalf("replay job %02d (%s): never reached a terminal status", i, id)
		}
		payload, err := c.result(id)
		if err != nil {
			t.Fatalf("replay job %02d: result: %v", i, err)
		}
		log.WriteString(normalize(payload))
		if at := strings.Index(body, `"output":"`); at >= 0 {
			path := strings.ReplaceAll(exportOutput(body), "$OUT", outDir)
			if raw, err := os.ReadFile(path); err == nil {
				fmt.Fprintf(&log, "artifact sha256=%x\n", sha256.Sum256(raw))
			} else {
				log.WriteString("artifact absent\n")
			}
		}
		d.checkAlive()
	}

	m, err := c.metrics()
	if err != nil {
		t.Fatalf("replay: metrics: %v", err)
	}
	jt := m.JobsTotal
	fmt.Fprintf(&log, "totals submitted=%d accepted=%d succeeded=%d failed=%d cancelled=%d\n",
		jt.Submitted, jt.Accepted, jt.Succeeded, jt.Failed, jt.Cancelled)
	d.terminate()
	return []byte(log.String())
}

// exportOutput pulls the raw (unresolved) "output" value from a body.
func exportOutput(body string) string {
	const key = `"output":"`
	at := strings.Index(body, key)
	end := strings.Index(body[at+len(key):], `"`)
	return body[at+len(key) : at+len(key)+end]
}

// waitTerminal polls a job until it leaves queued/running.
func waitTerminal(c *client, id string, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		code, v, err := c.jobStatus(id)
		if err == nil && code == http.StatusOK &&
			v.Status != "queued" && v.Status != "running" {
			return true
		}
		time.Sleep(25 * time.Millisecond)
	}
	return false
}
