package e2e

import (
	"fmt"
	"os"
	"path/filepath"

	"micgraph/internal/gen"
	"micgraph/internal/graphio"
)

// The file pool: small on-disk graphs the oracle submits by path, plus
// deterministic corruption. Corruption never mutates an existing file — it
// writes a new *version* (g0.v1.mtx, g0.v2.mtx, ...), because the daemon
// caches graphs by path: a fresh path guarantees the corrupted bytes are
// actually read instead of served from the cache. The action generator
// mirrors the same version counters, so a generated script references
// exactly the files the pool will have materialised by that point.
//
// poolFiles describes the fixed base files; index is the File field of
// actions. Scale 16 keeps each graph around a thousand vertices — big
// enough to exercise the loaders, small enough that a chaos run is I/O
// trivial.
var poolFiles = []struct {
	suite string
	ext   string
	scale int
}{
	{suite: "pwtk", ext: "mtx", scale: 16},
	{suite: "hood", ext: "bin", scale: 16},
}

// poolFileName is the canonical versioned name, shared by the pool and the
// action generator ($F/<name> in scripts).
func poolFileName(i, version int) string {
	return fmt.Sprintf("g%d.v%d.%s", i, version, poolFiles[i].ext)
}

type filePool struct {
	t    tb
	dir  string
	vers []int
}

// newFilePool generates the base (v0) files into dir.
func newFilePool(t tb, dir string) *filePool {
	t.Helper()
	p := &filePool{t: t, dir: dir, vers: make([]int, len(poolFiles))}
	for i, pf := range poolFiles {
		cfg, err := gen.SuiteConfig(pf.suite)
		if err != nil {
			t.Fatalf("file pool: %v", err)
		}
		g, err := gen.Mesh(gen.Scaled(cfg, pf.scale))
		if err != nil {
			t.Fatalf("file pool: generating %s: %v", pf.suite, err)
		}
		format, err := graphio.ParseFormat(pf.ext)
		if err != nil {
			t.Fatalf("file pool: %v", err)
		}
		if err := graphio.WriteFile(p.path(i, 0), g, format); err != nil {
			t.Fatalf("file pool: writing %s: %v", poolFileName(i, 0), err)
		}
	}
	return p
}

func (p *filePool) path(i, version int) string {
	return filepath.Join(p.dir, poolFileName(i, version))
}

// current is the path scripts resolve "$F/g<i>.v<latest>" against.
func (p *filePool) current(i int) string { return p.path(i, p.vers[i]) }

// corrupt writes the next version of file i as a damaged copy of the
// current one and returns its path. The damage is deterministic in
// (file, version): truncation to half length, except for odd versions of
// text formats, which instead have a window of digits xor-ed into
// non-digits mid-file. Both reliably fail the loaders — truncation trips
// the element-count checks, the xor window breaks numeric parsing — so a
// submit referencing a corrupted version must produce a failed job.
func (p *filePool) corrupt(i int) string {
	p.t.Helper()
	raw, err := os.ReadFile(p.current(i))
	if err != nil {
		p.t.Fatalf("file pool: %v", err)
	}
	next := p.vers[i] + 1
	if poolFiles[i].ext != "bin" && next%2 == 1 {
		at := len(raw) * 7 / 10
		for j := at; j < at+16 && j < len(raw); j++ {
			if raw[j] >= '0' && raw[j] <= '9' {
				raw[j] ^= 0x50
			}
		}
	} else {
		raw = raw[:len(raw)/2]
	}
	path := p.path(i, next)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		p.t.Fatalf("file pool: %v", err)
	}
	p.vers[i] = next
	return path
}
