package e2e

import "testing"

// TestChaosSmoke is the CI tier: a short seeded fuzz of the real micserved
// binary with every fault family armed. The full script is logged up front,
// so a red run is reproducible with the exact command printed here; longer
// local soaks just raise -chaos.actions (and vary -chaos.seed).
func TestChaosSmoke(t *testing.T) {
	t.Logf("reproduce: go test ./test/e2e/ -run TestChaosSmoke -args -chaos.actions=%d -chaos.seed=%d",
		*chaosActions, *chaosSeed)
	runChaos(t, *chaosSeed, *chaosActions)
}
