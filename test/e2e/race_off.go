//go:build !race

package e2e

// raceEnabled is false in plain builds; see race_on.go.
const raceEnabled = false
