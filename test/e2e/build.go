package e2e

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// The binary is built once per test process and shared by every test; the
// go build cache makes repeated test runs (and the CI smoke job) cheap.
var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
	buildLog  string
)

// servedBinary compiles cmd/micserved (with -race when the oracle itself
// runs under the race detector) and returns the binary path.
func servedBinary(t tb) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			buildErr = err
			return
		}
		dir, err := os.MkdirTemp("", "micserved-e2e-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "micserved")
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", buildBin, "micgraph/cmd/micserved")
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		buildLog = string(out)
		buildErr = err
	})
	if buildErr != nil {
		t.Fatalf("building micserved: %v\n%s", buildErr, buildLog)
	}
	return buildBin
}

// moduleRoot walks up from the working directory (the package directory
// under `go test`) to the directory holding go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
