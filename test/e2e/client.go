package e2e

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// client is the oracle's HTTP actor against one daemon incarnation.
type client struct {
	t    tb
	base string
	hc   *http.Client
}

func newClient(t tb, d *daemon) *client {
	return &client{t: t, base: d.url(), hc: &http.Client{Timeout: 15 * time.Second}}
}

// jobSpans mirrors serve.Spans: the per-job latency breakdown a terminal
// status view carries.
type jobSpans struct {
	QueueNS int64 `json:"queue_ns"`
	CacheNS int64 `json:"cache_ns"`
	ExecNS  int64 `json:"exec_ns"`
	FlushNS int64 `json:"flush_ns"`
	TotalNS int64 `json:"total_ns"`
}

// jobView mirrors the serve.JobView fields the oracle reads.
type jobView struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	Status string    `json:"status"`
	Error  string    `json:"error"`
	Spans  *jobSpans `json:"spans"`
}

// jobsTotal mirrors serve.JobTotals.
type jobsTotal struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Accepted  int64 `json:"accepted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	InFlight  int64 `json:"in_flight"`
}

// queueStats mirrors serve.QueueStats.
type queueStats struct {
	Workers   int   `json:"workers"`
	Depth     int   `json:"depth"`
	Queued    int   `json:"queued"`
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Running   int   `json:"running"`
	Completed int64 `json:"completed"`
	Draining  bool  `json:"draining"`
}

// metricsSnap is the /metricsz slice the invariant checker consumes.
type metricsSnap struct {
	Queue     queueStats `json:"queue"`
	JobsTotal jobsTotal  `json:"jobs_total"`
}

// submitResult is one submit attempt's observable outcome.
type submitResult struct {
	code       int
	view       jobView
	retryAfter string
	body       string
}

// submit POSTs a raw JSON body to /jobs.
func (c *client) submit(body string) (submitResult, error) {
	resp, err := c.hc.Post(c.base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return submitResult{}, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	res := submitResult{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: string(raw)}
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &res.view); err != nil {
			return res, fmt.Errorf("202 with undecodable body %q: %w", raw, err)
		}
	}
	return res, nil
}

// jobStatus GETs /jobs/{id}.
func (c *client) jobStatus(id string) (int, jobView, error) {
	resp, err := c.hc.Get(c.base + "/jobs/" + id)
	if err != nil {
		return 0, jobView{}, err
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return resp.StatusCode, v, err
		}
	}
	return resp.StatusCode, v, nil
}

// list GETs /jobs and returns the retained job views.
func (c *client) list() ([]jobView, error) {
	resp, err := c.hc.Get(c.base + "/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var views []jobView
	return views, json.NewDecoder(resp.Body).Decode(&views)
}

// cancel DELETEs /jobs/{id}.
func (c *client) cancel(id string) (int, error) {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/jobs/"+id, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// metrics GETs and decodes /metricsz.
func (c *client) metrics() (metricsSnap, error) {
	var m metricsSnap
	resp, err := c.hc.Get(c.base + "/metricsz")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// result GETs a terminal job's full JSONL payload in one shot.
func (c *client) result(id string) (string, error) {
	resp, err := c.hc.Get(c.base + "/jobs/" + id + "/result")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// follower streams one job's /result from submission until the stream
// closes. A follower that never finishes is a stuck job — the sharpest
// form of the no-stuck-jobs invariant, checked at drain time.
type follower struct {
	id   string
	done chan struct{}

	mu      sync.Mutex
	payload []byte
	err     error
}

// follow starts streaming id's result. The request deliberately has no
// client timeout: the stream is supposed to stay open exactly as long as
// the job is non-terminal, and the *daemon* closing it is the invariant.
func (c *client) follow(id string) *follower {
	f := &follower{id: id, done: make(chan struct{})}
	go func() {
		defer close(f.done)
		hc := &http.Client{} // no timeout: bounded by the job's own lifecycle
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet,
			c.base+"/jobs/"+id+"/result", nil)
		if err != nil {
			f.fail(err)
			return
		}
		resp, err := hc.Do(req)
		if err != nil {
			f.fail(err)
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		f.mu.Lock()
		f.payload = raw
		f.err = err
		f.mu.Unlock()
	}()
	return f
}

func (f *follower) fail(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// wait blocks until the stream closed or the deadline passed; it reports
// whether the stream completed.
func (f *follower) wait(within time.Duration) bool {
	select {
	case <-f.done:
		return true
	case <-time.After(within):
		return false
	}
}

// lines returns the JSONL payload split into decoded objects, failing the
// run on any non-JSON line (a malformed stream is itself a violation).
func (f *follower) lines(t tb) []map[string]any {
	t.Helper()
	f.mu.Lock()
	raw, err := string(f.payload), f.err
	f.mu.Unlock()
	if err != nil {
		t.Fatalf("INVARIANT stream-clean: job %s result stream broke: %v", f.id, err)
	}
	var out []map[string]any
	for i, line := range strings.Split(strings.TrimRight(raw, "\n"), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("INVARIANT stream-jsonl: job %s line %d is not JSON: %v\n%s", f.id, i+1, err, line)
		}
		out = append(out, m)
	}
	return out
}
