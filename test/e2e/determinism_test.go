package e2e

import (
	"bytes"
	"fmt"
	"testing"
)

// Same seed, same script — byte for byte — and a different seed must
// actually change the script (a generator that ignores its seed would pass
// the first check trivially).
func TestChaosScriptDeterminism(t *testing.T) {
	const n = 200
	a := scriptLog(genScript(*chaosSeed, n))
	b := scriptLog(genScript(*chaosSeed, n))
	if !bytes.Equal(a, b) {
		t.Fatalf("INVARIANT script-deterministic: two generations for seed %d differ:\n%s", *chaosSeed, firstDiff(a, b))
	}
	c := scriptLog(genScript(*chaosSeed+1, n))
	if bytes.Equal(a, c) {
		t.Fatalf("scripts for seeds %d and %d are identical; generator is ignoring the seed", *chaosSeed, *chaosSeed+1)
	}
}

// The coverage post-pass must hold for any seed: every long-enough script
// exercises overload, corruption and a mid-flight restart.
func TestChaosScriptCoverage(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		have := map[string]bool{}
		expectFail := false
		for _, a := range genScript(seed, 75) {
			have[a.Op] = true
			expectFail = expectFail || a.ExpectFail
		}
		for _, op := range []string{opSubmit, opOverload, opCorrupt, opRestart, opProbe} {
			if !have[op] {
				t.Errorf("seed %d: 75-action script has no %s op", seed, op)
			}
		}
		if !expectFail {
			t.Errorf("seed %d: 75-action script never submits a corrupted file", seed)
		}
	}
}

// Two full live-daemon replay runs with the same seed must produce
// byte-identical logs: same accepted jobs, same per-job result payloads,
// same injected failures, same export artifact hashes, same final totals.
func TestChaosReplayDeterminism(t *testing.T) {
	const jobs = 10
	a := runReplay(t, *chaosSeed, jobs)
	b := runReplay(t, *chaosSeed, jobs)
	if !bytes.Equal(a, b) {
		t.Fatalf("INVARIANT replay-deterministic: two runs for seed %d differ:\n%s", *chaosSeed, firstDiff(a, b))
	}
	t.Logf("replay log (%d bytes):\n%s", len(a), a)
}

// firstDiff renders the first differing line of two logs for the failure
// message.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  run A: %s\n  run B: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
