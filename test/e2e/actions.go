package e2e

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"micgraph/internal/xrand"
)

// chaosDaemon is the daemon shape every chaos run drives: small queue and
// worker pool so overload bursts reliably hit admission control, short job
// timeout so nothing can stall a run, and every fault family armed —
// scheduler panics and stalls, graph read and write faults, straggler
// cores for sweeps. The fault seed is derived from the chaos seed, so one
// seed reproduces both the action script and the injected failures.
func chaosDaemon(seed uint64) daemonConfig {
	return daemonConfig{
		workers:       2,
		kernelWorkers: 2,
		queueDepth:    3,
		jobTimeout:    10 * time.Second,
		drainTimeout:  30 * time.Second,
		faultSeed:     seed*2654435761 + 1,
		panicRate:     0.05,
		stallRate:     0.10,
		stall:         2 * time.Millisecond,
		readRate:      0.05,
		writeRate:     0.25,
		stragglerRate: 0.2,
	}
}

// Action ops. Submit-like ops carry a Body; poll/cancel address a tracked
// job by Target; corrupt addresses a pool file; overload carries a burst
// of bodies; restart SIGTERMs the daemon mid-flight and starts a fresh one.
const (
	opSubmit    = "submit"        // submit a valid (or bogus-variant) job
	opMalformed = "malformed"     // submit a body that must 400
	opPoll      = "poll"          // GET /jobs/{id} of a tracked job
	opProbe     = "latency-probe" // poll + latency-span invariants on the view
	opCancel    = "cancel"        // DELETE /jobs/{id} of a tracked job
	opList      = "list"          // GET /jobs
	opMetrics   = "metrics"       // GET /metricsz + conservation check
	opOverload  = "overload"      // burst of submits past the queue depth
	opCorrupt   = "corrupt"       // damage a pool graph file (new version)
	opRestart   = "restart"       // SIGTERM, drain invariants, fresh daemon
)

// action is one generated step. Bodies reference runtime directories via
// the placeholders $F (file pool) and $OUT (export output dir), so the
// script itself — and its log — is byte-identical across runs and hosts.
type action struct {
	Op         string
	Body       string
	Burst      []string
	Target     int
	File       int
	ExpectFail bool // submit of a corrupted file: the job must not succeed
	IsExport   bool
}

// format renders the canonical script-log line (sans index). Every field
// that influences execution appears here; two scripts are behaviourally
// identical iff their logs are byte-identical.
func (a action) format() string {
	switch a.Op {
	case opSubmit:
		return fmt.Sprintf("%s expect_fail=%t export=%t body=%s", a.Op, a.ExpectFail, a.IsExport, a.Body)
	case opMalformed:
		return fmt.Sprintf("%s body=%s", a.Op, a.Body)
	case opPoll, opProbe, opCancel:
		return fmt.Sprintf("%s target=%d", a.Op, a.Target)
	case opCorrupt:
		return fmt.Sprintf("%s file=%d", a.Op, a.File)
	case opOverload:
		return fmt.Sprintf("%s burst=%s", a.Op, strings.Join(a.Burst, "|"))
	default:
		return a.Op
	}
}

// scriptLog renders the whole script in canonical form — the byte-identical
// artifact the determinism test pins and a failing run logs for replay.
func scriptLog(script []action) []byte {
	var buf bytes.Buffer
	for i, a := range script {
		fmt.Fprintf(&buf, "%04d %s\n", i, a.format())
	}
	return buf.Bytes()
}

var (
	suites       = []string{"pwtk", "hood", "bmw3_2", "msdoor"}
	bfsVariants  = []string{"seq", "omp-block", "omp-block-relaxed", "tbb-block", "tbb-block-relaxed", "bag", "tls"}
	colVariants  = []string{"seq", "openmp", "cilk", "tbb"}
	irrVariants  = []string{"openmp", "cilk", "tbb"}
	sweepExps    = []string{"fig1a", "fig3a", "fig4a"}
	exportExts   = []string{"mtx", "bin", "el"}
	malformedSet = []string{
		`{`,
		`{"kind":"nope"}`,
		`{"kind":"bfs"}`,
		`{"kind":"sweep","experiments":["figZZ"]}`,
		`{"kind":"export","graph":{"suite":"pwtk"}}`,
		`{"kind":"bfs","graph":{"suite":"pwtk"},"timeout_ms":-5}`,
		`{"kind":"bfs","graph":{"suite":"pwtk"},"bogus_field":1}`,
	}
)

// genScript derives a whole action script from (seed, n) and nothing else.
// It mirrors the file pool's version counters so corrupted-file references
// always name files the executor will have materialised. A post-pass
// guarantees coverage on longer runs: at least one overload, one corrupt,
// one mid-flight restart and one latency probe, placed at deterministic indices, so the
// acceptance scenario (panics+stalls+read/write faults+overload+SIGTERM/
// restart) holds for every seed, not just lucky ones.
func genScript(seed uint64, n int) []action {
	rng := xrand.New(seed)
	cfg := chaosDaemon(seed)
	vers := make([]int, len(poolFiles))
	exports := 0
	script := make([]action, 0, n)

	kernelBody := func() string {
		suite := suites[rng.Intn(len(suites))]
		scale := []int{8, 16, 32}[rng.Intn(3)]
		chunk := []int{50, 100, 200}[rng.Intn(3)]
		timeout := ""
		if rng.Intn(8) == 0 {
			timeout = `,"timeout_ms":50` // deadline-cancel some jobs on purpose
		}
		switch rng.Intn(3) {
		case 0:
			v := bfsVariants[rng.Intn(len(bfsVariants))]
			if rng.Intn(12) == 0 {
				v = "bogus" // accepted, then fails at run time
			}
			return fmt.Sprintf(`{"kind":"bfs","variant":%q,"chunk":%d,"graph":{"suite":%q,"scale":%d}%s}`,
				v, chunk, suite, scale, timeout)
		case 1:
			v := colVariants[rng.Intn(len(colVariants))]
			return fmt.Sprintf(`{"kind":"coloring","variant":%q,"chunk":%d,"graph":{"suite":%q,"scale":%d}%s}`,
				v, chunk, suite, scale, timeout)
		default:
			v := irrVariants[rng.Intn(len(irrVariants))]
			return fmt.Sprintf(`{"kind":"irregular","variant":%q,"iters":%d,"chunk":%d,"graph":{"suite":%q,"scale":%d}%s}`,
				v, 3+rng.Intn(4), chunk, suite, scale, timeout)
		}
	}
	fastBody := func() string {
		return fmt.Sprintf(`{"kind":"coloring","variant":"seq","graph":{"suite":%q,"scale":8}}`,
			suites[rng.Intn(len(suites))])
	}

	for len(script) < n {
		var a action
		switch p := rng.Intn(100); {
		case p < 30: // kernel job on a builtin suite graph
			a = action{Op: opSubmit, Body: kernelBody()}
		case p < 38: // sweep job
			a = action{Op: opSubmit, Body: fmt.Sprintf(
				`{"kind":"sweep","experiments":[%q],"sweep_scale":8,"retries":%d}`,
				sweepExps[rng.Intn(len(sweepExps))], rng.Intn(3))}
		case p < 48: // export job (fires the graphio/write fault site)
			ext := exportExts[rng.Intn(len(exportExts))]
			a = action{Op: opSubmit, IsExport: true, Body: fmt.Sprintf(
				`{"kind":"export","graph":{"suite":%q,"scale":16},"output":"$OUT/export-%d.%s"}`,
				suites[rng.Intn(len(suites))], exports, ext)}
			exports++
		case p < 58: // kernel job on a pool file (pristine or corrupted)
			f := rng.Intn(len(poolFiles))
			a = action{Op: opSubmit, ExpectFail: vers[f] > 0, Body: fmt.Sprintf(
				`{"kind":"coloring","variant":"openmp","graph":{"file":"$F/%s"}}`,
				poolFileName(f, vers[f]))}
		case p < 65:
			a = action{Op: opMalformed, Body: malformedSet[rng.Intn(len(malformedSet))]}
		case p < 70:
			a = action{Op: opPoll, Target: rng.Intn(1 << 16)}
		case p < 73:
			a = action{Op: opProbe, Target: rng.Intn(1 << 16)}
		case p < 79:
			a = action{Op: opList}
		case p < 87:
			a = action{Op: opCancel, Target: rng.Intn(1 << 16)}
		case p < 94:
			a = action{Op: opMetrics}
		case p < 97: // overload: a slow sweep, then a burst past the queue
			burst := []string{`{"kind":"sweep","experiments":["fig4a"],"sweep_scale":8}`}
			for k := 0; k < cfg.queueDepth+cfg.workers+3; k++ {
				burst = append(burst, fastBody())
			}
			a = action{Op: opOverload, Burst: burst}
		case p < 99:
			f := rng.Intn(len(poolFiles))
			vers[f]++
			a = action{Op: opCorrupt, File: f}
		default:
			a = action{Op: opRestart}
		}
		script = append(script, a)
	}

	// Coverage post-pass: longer runs must exercise overload, corruption and
	// a mid-flight restart whatever the dice said. Only observer slots
	// (poll/list/metrics/cancel) are overwritten — replacing a corrupt or
	// submit op would desync the pool-version bookkeeping above.
	if n >= 30 {
		replaceable := map[string]bool{opPoll: true, opList: true, opMetrics: true, opCancel: true}
		ensure := func(op string, at int, mk func() action) {
			for _, a := range script {
				if a.Op == op {
					return
				}
			}
			for off := 0; off < n; off++ {
				if i := (at + off) % n; replaceable[script[i].Op] {
					script[i] = mk()
					return
				}
			}
		}
		ensure(opOverload, n/3, func() action {
			burst := []string{`{"kind":"sweep","experiments":["fig4a"],"sweep_scale":8}`}
			for k := 0; k < cfg.queueDepth+cfg.workers+3; k++ {
				burst = append(burst, fastBody())
			}
			return action{Op: opOverload, Burst: burst}
		})
		ensure(opCorrupt, n/2, func() action { return action{Op: opCorrupt, File: 0} })
		ensure(opRestart, 2*n/3, func() action { return action{Op: opRestart} })
		ensure(opProbe, n/4, func() action { return action{Op: opProbe, Target: 1} })

		// A corrupted file that is never submitted exercises nothing: make
		// sure some submit references a corrupted version after it exists.
		// Walk the final script tracking versions; if no expect-fail submit
		// follows the first corruption, convert the next observer slot (or
		// append, if none remains) into one.
		walk := make([]int, len(poolFiles))
		damaged := -1
		covered := false
		fixAt := -1
		for i := range script {
			switch a := script[i]; {
			case a.Op == opCorrupt:
				walk[a.File]++
				if damaged == -1 {
					damaged = a.File
				}
			case damaged >= 0 && a.Op == opSubmit && a.ExpectFail:
				covered = true
			case damaged >= 0 && fixAt == -1 && replaceable[a.Op]:
				fixAt = i
			}
			if covered {
				break
			}
		}
		if !covered && damaged >= 0 {
			fix := action{Op: opSubmit, ExpectFail: true, Body: fmt.Sprintf(
				`{"kind":"coloring","variant":"openmp","graph":{"file":"$F/%s"}}`,
				poolFileName(damaged, 1))}
			if fixAt >= 0 {
				script[fixAt] = fix
			} else {
				script = append(script, fix)
			}
		}
	}
	return script
}
